//! Minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace is offline, so `snap-obs` carries its own JSON layer:
//! enough to serialize a [`crate::RunReport`], parse it back for
//! round-trip tests, and let the CI smoke job validate emitted reports.
//! Numbers are `f64` (report counters fit: they are far below 2^53 in
//! practice); non-finite floats serialize as `null`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered list of key/value pairs (insertion order is
    /// preserved, duplicate keys are kept as written).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize compactly (no extra whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write `value` as a JSON number: integers without a fraction, other
/// finite values via `{:?}` (Rust's shortest round-trip formatting),
/// non-finite values as `null`.
pub fn write_f64(out: &mut String, value: f64) {
    if !value.is_finite() {
        out.push_str("null");
    } else if value.fract() == 0.0 && value.abs() < 1e15 {
        let _ = write!(out, "{}", value as i64);
    } else {
        let _ = write!(out, "{value:?}");
    }
}

/// Write `s` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept but map lone
                            // surrogates to the replacement character.
                            let ch = if (0xd800..0xe000).contains(&cp) {
                                char::REPLACEMENT_CHARACTER
                            } else {
                                char::from_u32(cp).unwrap_or(char::REPLACEMENT_CHARACTER)
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e1 ").unwrap(), Json::Num(-125.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"name":"run","counters":{"edges":42},"children":[{"x":[1,2,3]}]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("run"));
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("edges"))
                .and_then(Json::as_u64),
            Some(42)
        );
        assert_eq!(v.to_string_compact(), doc);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn round_trips_escapes_and_floats() {
        let v = Json::Obj(vec![
            (
                "s".to_string(),
                Json::Str("tab\t\"quote\" \u{1}".to_string()),
            ),
            ("f".to_string(), Json::Num(0.1)),
            ("big".to_string(), Json::Num(1_000_000.0)),
            ("nan".to_string(), Json::Num(f64::NAN)),
        ]);
        let text = v.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("s").and_then(Json::as_str),
            Some("tab\t\"quote\" \u{1}")
        );
        assert_eq!(back.get("f").and_then(Json::as_f64), Some(0.1));
        assert_eq!(back.get("big").and_then(Json::as_u64), Some(1_000_000));
        assert_eq!(back.get("nan"), Some(&Json::Null));
    }
}
