//! Immutable snapshot of a collected span tree: JSON in/out, a human
//! renderer, and structural queries used by tests and the CLI.

use crate::hist::HistSnapshot;
use crate::json::{Json, JsonError};
use crate::ring::TraceEvent;

/// Memory attributed to one span by the tracking allocator (see
/// [`crate::alloc`]): thread-local deltas between span open and close,
/// summed over activations. Absent (`None` on [`ReportNode`], no JSON
/// field) for reports collected without memory tracking, so pre-memory
/// reports and consumers stay compatible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes allocated on the coordinating thread inside the span.
    pub allocated: u64,
    /// Bytes freed on the coordinating thread inside the span.
    pub freed: u64,
    /// Allocation events inside the span.
    pub allocs: u64,
    /// Peak live bytes above the span's entry level (max over
    /// activations for coalesced spans).
    pub peak_delta: u64,
}

impl MemStats {
    /// True when every field is zero (such stats are not emitted).
    pub fn is_empty(&self) -> bool {
        *self == MemStats::default()
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("allocated".to_string(), Json::Num(self.allocated as f64)),
            ("freed".to_string(), Json::Num(self.freed as f64)),
            ("allocs".to_string(), Json::Num(self.allocs as f64)),
            ("peak_delta".to_string(), Json::Num(self.peak_delta as f64)),
        ])
    }

    fn from_json(value: &Json) -> MemStats {
        let field = |name: &str| value.get(name).and_then(Json::as_u64).unwrap_or(0);
        MemStats {
            allocated: field("allocated"),
            freed: field("freed"),
            allocs: field("allocs"),
            peak_delta: field("peak_delta"),
        }
    }
}

/// One live-bytes sample on the trace timebase, recorded at span
/// boundaries while both tracing and memory tracking are on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSample {
    /// Microseconds since the trace epoch (same clock as
    /// [`TraceEvent::ts_us`]).
    pub ts_us: u64,
    /// Global live bytes at the sample instant.
    pub bytes_live: u64,
}

/// `1234567` → `"1.2 MiB"`: human-readable byte volumes for renderings.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;
    if bytes >= GIB {
        format!("{:.2} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// One span in a finished report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReportNode {
    pub name: String,
    /// Microseconds from the run epoch to the first activation.
    pub start_us: u64,
    /// Total time inside the span, microseconds, summed over activations.
    pub duration_us: u64,
    /// Number of completed activations (coalesced same-name spans).
    pub calls: u64,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub meta: Vec<(String, String)>,
    /// Latency histograms attached to this span (empty for reports from
    /// before the profiling layer; the JSON field is optional).
    pub hists: Vec<(String, HistSnapshot)>,
    /// Memory attribution (None for reports collected without the
    /// tracking allocator; the JSON field is optional).
    pub mem: Option<MemStats>,
    pub children: Vec<ReportNode>,
}

impl ReportNode {
    /// Counter `name` on this node.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Gauge `name` on this node.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram `name` on this node.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Metadata `name` on this node.
    pub fn meta_value(&self, name: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First node named `name` in this subtree (pre-order), including
    /// this node itself.
    pub fn find(&self, name: &str) -> Option<&ReportNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Nesting invariant: every child starts no earlier than its parent
    /// and, for single-activation spans, ends no later (with a small
    /// slack for timer granularity). Coalesced spans (calls > 1) sum
    /// durations across activations, so only the start bound applies.
    pub fn well_formed(&self) -> bool {
        const SLACK_US: u64 = 50;
        let end = self.start_us + self.duration_us + SLACK_US;
        self.children.iter().all(|c| {
            c.start_us + SLACK_US >= self.start_us
                && (self.calls > 1 || c.start_us + c.duration_us <= end + SLACK_US)
                && c.well_formed()
        })
    }

    /// Total spans in this subtree, including this node.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.span_count()).sum::<usize>()
    }

    fn to_json(&self) -> Json {
        let mut members = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("start_us".to_string(), Json::Num(self.start_us as f64)),
            (
                "duration_us".to_string(),
                Json::Num(self.duration_us as f64),
            ),
            ("calls".to_string(), Json::Num(self.calls as f64)),
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "meta".to_string(),
                Json::Obj(
                    self.meta
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "children".to_string(),
                Json::Arr(self.children.iter().map(|c| c.to_json()).collect()),
            ),
        ];
        // Optional field, emitted only when present so pre-profiling
        // consumers (and committed baseline reports) stay valid.
        if !self.hists.is_empty() {
            members.push((
                "hists".to_string(),
                Json::Obj(
                    self.hists
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect(),
                ),
            ));
        }
        if let Some(mem) = self.mem.filter(|m| !m.is_empty()) {
            members.push(("mem".to_string(), mem.to_json()));
        }
        Json::Obj(members)
    }

    fn from_json(value: &Json) -> Result<ReportNode, JsonError> {
        let missing = |what: &str| JsonError {
            offset: 0,
            message: format!("report node missing or malformed field: {what}"),
        };
        Ok(ReportNode {
            name: value
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("name"))?
                .to_string(),
            start_us: value
                .get("start_us")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("start_us"))?,
            duration_us: value
                .get("duration_us")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("duration_us"))?,
            calls: value
                .get("calls")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("calls"))?,
            counters: value
                .get("counters")
                .and_then(Json::as_obj)
                .ok_or_else(|| missing("counters"))?
                .iter()
                .map(|(n, v)| {
                    v.as_u64()
                        .map(|v| (n.clone(), v))
                        .ok_or_else(|| missing("counter value"))
                })
                .collect::<Result<_, _>>()?,
            gauges: value
                .get("gauges")
                .and_then(Json::as_obj)
                .ok_or_else(|| missing("gauges"))?
                .iter()
                .map(|(n, v)| {
                    v.as_f64()
                        .map(|v| (n.clone(), v))
                        .ok_or_else(|| missing("gauge value"))
                })
                .collect::<Result<_, _>>()?,
            meta: value
                .get("meta")
                .and_then(Json::as_obj)
                .ok_or_else(|| missing("meta"))?
                .iter()
                .map(|(n, v)| {
                    v.as_str()
                        .map(|v| (n.clone(), v.to_string()))
                        .ok_or_else(|| missing("meta value"))
                })
                .collect::<Result<_, _>>()?,
            hists: match value.get("hists") {
                None => Vec::new(),
                Some(h) => h
                    .as_obj()
                    .ok_or_else(|| missing("hists"))?
                    .iter()
                    .map(|(n, v)| HistSnapshot::from_json(v).map(|h| (n.clone(), h)))
                    .collect::<Result<_, _>>()?,
            },
            mem: value.get("mem").map(MemStats::from_json),
            children: value
                .get("children")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("children"))?
                .iter()
                .map(ReportNode::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&indent);
        out.push_str(&self.name);
        // Metadata-only nodes (hand-built banners) carry no timing.
        if self.duration_us > 0 || self.calls > 0 {
            out.push_str(&format!("  {}", fmt_us(self.duration_us)));
        }
        if self.calls > 1 {
            out.push_str(&format!("  ({} calls)", self.calls));
        }
        for (name, value) in &self.meta {
            out.push_str(&format!("  {name}={value}"));
        }
        out.push('\n');
        for (name, value) in &self.counters {
            out.push_str(&format!("{indent}  · {name} = {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("{indent}  · {name} = {value:.6}\n"));
        }
        for (name, h) in &self.hists {
            out.push_str(&format!(
                "{indent}  · {name}: n={} p50={} p90={} p99={} max={} mean={:.1}\n",
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max,
                h.mean(),
            ));
        }
        if let Some(mem) = self.mem.filter(|m| !m.is_empty()) {
            out.push_str(&format!(
                "{indent}  · mem: alloc={} free={} peak+={} ({} allocs)\n",
                fmt_bytes(mem.allocated),
                fmt_bytes(mem.freed),
                fmt_bytes(mem.peak_delta),
                mem.allocs,
            ));
        }
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// A finished observability run: the root span plus everything recorded
/// under it. Produced by [`crate::take_report`]/[`crate::finish`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    pub root: ReportNode,
    /// Begin/end timeline events drained from the per-thread rings
    /// (empty unless tracing was enabled; see [`crate::enable_tracing`]).
    pub trace: Vec<TraceEvent>,
    /// Live-bytes samples on the trace timebase (empty unless both
    /// tracing and memory tracking were on); exported as Perfetto
    /// counter events by [`RunReport::to_chrome_trace`].
    pub mem_samples: Vec<MemSample>,
}

impl RunReport {
    /// Serialize the whole tree as compact JSON. Trace events, when
    /// present, ride along as a top-level `trace_events` array.
    pub fn to_json(&self) -> String {
        let mut value = self.root.to_json();
        if let Json::Obj(members) = &mut value {
            if !self.trace.is_empty() {
                members.push((
                    "trace_events".to_string(),
                    Json::Arr(self.trace.iter().map(trace_event_to_json).collect()),
                ));
            }
            // Compact pairs: [[ts_us, bytes_live], ...].
            if !self.mem_samples.is_empty() {
                members.push((
                    "mem_samples".to_string(),
                    Json::Arr(
                        self.mem_samples
                            .iter()
                            .map(|s| {
                                Json::Arr(vec![
                                    Json::Num(s.ts_us as f64),
                                    Json::Num(s.bytes_live as f64),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
        value.to_string_compact()
    }

    /// Parse a report previously produced by [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<RunReport, JsonError> {
        let value = Json::parse(text)?;
        let trace = match value.get("trace_events") {
            None => Vec::new(),
            Some(t) => t
                .as_arr()
                .ok_or_else(|| JsonError {
                    offset: 0,
                    message: "trace_events is not an array".to_string(),
                })?
                .iter()
                .map(trace_event_from_json)
                .collect::<Result<_, _>>()?,
        };
        let mem_samples = match value.get("mem_samples") {
            None => Vec::new(),
            Some(s) => s
                .as_arr()
                .ok_or_else(|| JsonError {
                    offset: 0,
                    message: "mem_samples is not an array".to_string(),
                })?
                .iter()
                .map(mem_sample_from_json)
                .collect::<Result<_, _>>()?,
        };
        Ok(RunReport {
            root: ReportNode::from_json(&value)?,
            trace,
            mem_samples,
        })
    }

    /// Serialize the trace timeline in Chrome trace-event format (an
    /// object with a `traceEvents` array of `B`/`E` records, plus `C`
    /// counter records carrying the live-bytes memory track when
    /// memory samples are present), loadable in Perfetto /
    /// `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<Json> = self
            .trace
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(e.name.clone())),
                    ("cat".to_string(), Json::Str("snap".to_string())),
                    (
                        "ph".to_string(),
                        Json::Str(if e.begin { "B" } else { "E" }.to_string()),
                    ),
                    ("ts".to_string(), Json::Num(e.ts_us as f64)),
                    ("pid".to_string(), Json::Num(1.0)),
                    ("tid".to_string(), Json::Num(e.tid as f64)),
                ])
            })
            .collect();
        // Perfetto renders same-pid counter events as a track graph;
        // tid 0 never collides with a real ring (rings start at 1).
        events.extend(self.mem_samples.iter().map(|s| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str("mem.bytes_live".to_string())),
                ("cat".to_string(), Json::Str("snap".to_string())),
                ("ph".to_string(), Json::Str("C".to_string())),
                ("ts".to_string(), Json::Num(s.ts_us as f64)),
                ("pid".to_string(), Json::Num(1.0)),
                ("tid".to_string(), Json::Num(0.0)),
                (
                    "args".to_string(),
                    Json::Obj(vec![(
                        "bytes_live".to_string(),
                        Json::Num(s.bytes_live as f64),
                    )]),
                ),
            ])
        }));
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ])
        .to_string_compact()
    }

    /// Render an indented human-readable tree (the `--trace` view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, 0);
        out
    }

    /// First node named `name`, searching pre-order from the root.
    pub fn find(&self, name: &str) -> Option<&ReportNode> {
        self.root.find(name)
    }

    /// Counter `name` summed over every node in the tree.
    pub fn total_counter(&self, name: &str) -> u64 {
        fn walk(node: &ReportNode, name: &str, acc: &mut u64) {
            *acc += node.counter(name).unwrap_or(0);
            for c in &node.children {
                walk(c, name, acc);
            }
        }
        let mut acc = 0;
        walk(&self.root, name, &mut acc);
        acc
    }
}

fn trace_event_to_json(e: &TraceEvent) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(e.name.clone())),
        ("tid".to_string(), Json::Num(e.tid as f64)),
        (
            "ph".to_string(),
            Json::Str(if e.begin { "B" } else { "E" }.to_string()),
        ),
        ("ts".to_string(), Json::Num(e.ts_us as f64)),
    ])
}

fn mem_sample_from_json(value: &Json) -> Result<MemSample, JsonError> {
    let malformed = || JsonError {
        offset: 0,
        message: "mem sample is not a [ts_us, bytes_live] pair".to_string(),
    };
    let pair = value.as_arr().ok_or_else(malformed)?;
    if pair.len() != 2 {
        return Err(malformed());
    }
    Ok(MemSample {
        ts_us: pair[0].as_u64().ok_or_else(malformed)?,
        bytes_live: pair[1].as_u64().ok_or_else(malformed)?,
    })
}

fn trace_event_from_json(value: &Json) -> Result<TraceEvent, JsonError> {
    let missing = |what: &str| JsonError {
        offset: 0,
        message: format!("trace event missing or malformed field: {what}"),
    };
    Ok(TraceEvent {
        name: value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("name"))?
            .to_string(),
        tid: value
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("tid"))? as u32,
        begin: match value.get("ph").and_then(Json::as_str) {
            Some("B") => true,
            Some("E") => false,
            _ => return Err(missing("ph")),
        },
        ts_us: value
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("ts"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            root: ReportNode {
                name: "run".to_string(),
                start_us: 0,
                duration_us: 1500,
                calls: 1,
                counters: vec![("n".to_string(), 256)],
                gauges: vec![("modularity".to_string(), 0.41)],
                meta: vec![("seed".to_string(), "7".to_string())],
                hists: vec![],
                mem: None,
                children: vec![ReportNode {
                    name: "bfs".to_string(),
                    start_us: 10,
                    duration_us: 900,
                    calls: 2,
                    counters: vec![("edges_examined".to_string(), 4096)],
                    gauges: vec![],
                    meta: vec![],
                    hists: vec![(
                        "level_us".to_string(),
                        HistSnapshot {
                            buckets: vec![(5, 3), (7, 1)],
                            count: 4,
                            sum: 250,
                            max: 90,
                        },
                    )],
                    mem: Some(MemStats {
                        allocated: 2_621_440,
                        freed: 1_048_576,
                        allocs: 17,
                        peak_delta: 1_572_864,
                    }),
                    children: vec![],
                }],
            },
            trace: vec![
                TraceEvent {
                    name: "bfs".to_string(),
                    tid: 1,
                    begin: true,
                    ts_us: 10,
                },
                TraceEvent {
                    name: "bfs".to_string(),
                    tid: 1,
                    begin: false,
                    ts_us: 910,
                },
            ],
            mem_samples: vec![
                MemSample {
                    ts_us: 10,
                    bytes_live: 4096,
                },
                MemSample {
                    ts_us: 910,
                    bytes_live: 1_572_864,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_preserves_tree() {
        let report = sample();
        let text = report.to_json();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn find_and_totals() {
        let report = sample();
        assert_eq!(
            report.find("bfs").unwrap().counter("edges_examined"),
            Some(4096)
        );
        assert_eq!(report.total_counter("edges_examined"), 4096);
        assert_eq!(report.root.span_count(), 2);
    }

    #[test]
    fn well_formedness_flags_bad_nesting() {
        let mut report = sample();
        assert!(report.root.well_formed());
        // A single-activation child that ends long after its parent is
        // not well-formed.
        report.root.children[0].calls = 1;
        report.root.children[0].duration_us = 10_000_000;
        assert!(!report.root.well_formed());
    }

    #[test]
    fn render_mentions_spans_and_counters() {
        let text = sample().render();
        assert!(text.contains("run"));
        assert!(text.contains("bfs"));
        assert!(text.contains("edges_examined = 4096"));
        assert!(text.contains("(2 calls)"));
        assert!(text.contains("seed=7"));
        // Histogram percentiles surface in the human rendering.
        assert!(text.contains("level_us: n=4 p50="), "{text}");
        assert!(text.contains("max=90"), "{text}");
        // Memory attribution renders human-readable byte volumes.
        assert!(text.contains("mem: alloc=2.5 MiB"), "{text}");
        assert!(text.contains("peak+=1.5 MiB (17 allocs)"), "{text}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_paired_events() {
        let trace = sample().to_chrome_trace();
        let value = Json::parse(&trace).unwrap();
        let events = value
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("E"));
        assert_eq!(events[0].get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(events[0].get("ts").and_then(Json::as_u64), Some(10));
        // The memory track rides along as counter events on tid 0.
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            events[2].get("name").and_then(Json::as_str),
            Some("mem.bytes_live")
        );
        assert_eq!(events[2].get("tid").and_then(Json::as_u64), Some(0));
        assert_eq!(
            events[3]
                .get("args")
                .and_then(|a| a.get("bytes_live"))
                .and_then(Json::as_u64),
            Some(1_572_864)
        );
    }

    #[test]
    fn reports_without_optional_fields_still_parse() {
        // A pre-profiling report: no hists, no trace_events, no mem.
        let legacy = r#"{"name":"run","start_us":0,"duration_us":5,"calls":1,
            "counters":{},"gauges":{},"meta":{},"children":[]}"#;
        let report = RunReport::from_json(legacy).unwrap();
        assert!(report.root.hists.is_empty());
        assert!(report.trace.is_empty());
        assert!(report.root.mem.is_none());
        assert!(report.mem_samples.is_empty());
    }

    #[test]
    fn fmt_bytes_picks_sensible_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(999), "999 B");
        assert_eq!(fmt_bytes(1536), "1.5 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }
}
