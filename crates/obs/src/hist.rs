//! Log-bucketed latency histograms (HDR-style, power-of-two buckets).
//!
//! A [`Histogram`] is a fixed array of 65 relaxed-atomic buckets: bucket 0
//! holds exact zeros and bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`. All
//! mutation is `fetch_add` with `Ordering::Relaxed`, so any number of rayon
//! workers can record into one histogram through a shared `Arc`, and two
//! histograms [`merge`](Histogram::merge_from) by summing buckets — merging
//! is associative and commutative by construction (it is vector addition).
//!
//! Percentile queries run on an immutable [`HistSnapshot`]: the reported
//! value is the *upper bound* of the bucket holding the requested rank,
//! clamped to the exact observed maximum, which guarantees
//! `true_quantile <= reported <= max(2 * true_quantile - 1, true_quantile)`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::json::{Json, JsonError};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for `value`: 0 for 0, otherwise `64 - leading_zeros`.
#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `idx` (`0` for bucket 0, else
/// `2^idx - 1`, saturating at `u64::MAX`).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// A mergeable, thread-safe latency histogram with power-of-two buckets.
///
/// Values are whatever unit the caller records — kernel code records
/// microseconds for per-source / per-level / per-round timings, and the
/// workspace pool records per-checkout traversal counts.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Fold another histogram into this one (bucket-wise sum; the merged
    /// max is the max of the two maxima).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v != 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable snapshot for rendering / serialization.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let v = b.load(Ordering::Relaxed);
                    (v != 0).then_some((i as u8, v))
                })
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable, sparse snapshot of a [`Histogram`]: only non-empty buckets
/// are kept, as `(bucket_index, count)` pairs in index order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    pub buckets: Vec<(u8, u64)>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistSnapshot {
    /// Value at quantile `q` in `(0, 1]`: the upper bound of the bucket
    /// containing rank `ceil(q * count)`, clamped to the observed max.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx as usize).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistSnapshot::percentile`] for bounds).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Mean of the recorded values (exact: from the true sum, not buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_string(), Json::Num(self.count as f64)),
            ("sum".to_string(), Json::Num(self.sum as f64)),
            ("max".to_string(), Json::Num(self.max as f64)),
            (
                "buckets".to_string(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| Json::Arr(vec![Json::Num(i as f64), Json::Num(n as f64)]))
                        .collect(),
                ),
            ),
        ])
    }

    pub(crate) fn from_json(value: &Json) -> Result<HistSnapshot, JsonError> {
        let missing = |what: &str| JsonError {
            offset: 0,
            message: format!("histogram missing or malformed field: {what}"),
        };
        Ok(HistSnapshot {
            count: value
                .get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("count"))?,
            sum: value
                .get("sum")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("sum"))?,
            max: value
                .get("max")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("max"))?,
            buckets: value
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("buckets"))?
                .iter()
                .map(|pair| {
                    let arr = pair.as_arr().ok_or_else(|| missing("bucket pair"))?;
                    match arr {
                        [i, n] => Ok((
                            i.as_u64().ok_or_else(|| missing("bucket index"))? as u8,
                            n.as_u64().ok_or_else(|| missing("bucket count"))?,
                        )),
                        _ => Err(missing("bucket pair")),
                    }
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Cheap cloneable handle to a [`Histogram`] on a report node, or a no-op
/// when collection is disabled. Capture one on the coordinating thread and
/// share it with workers; [`start`](HistHandle::start) /
/// [`stop_us`](HistHandle::stop_us) time a section without ever calling
/// `Instant::now` on the disabled path.
#[derive(Clone, Debug, Default)]
pub struct HistHandle(pub(crate) Option<Arc<Histogram>>);

impl HistHandle {
    /// Record one observation (no-op without a live context).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Begin timing a section: `Some(Instant)` only when the handle is
    /// live, so disabled runs never touch the clock.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.0.as_ref().map(|_| Instant::now())
    }

    /// Finish timing a section started with [`HistHandle::start`],
    /// recording the elapsed microseconds.
    #[inline]
    pub fn stop_us(&self, started: Option<Instant>) {
        if let (Some(h), Some(t)) = (&self.0, started) {
            h.record(t.elapsed().as_micros() as u64);
        }
    }

    /// Fold a free-standing histogram (e.g. a pool-owned one) into the
    /// span histogram behind this handle.
    pub fn merge_from(&self, other: &Histogram) {
        if let Some(h) = &self.0 {
            h.merge_from(other);
        }
    }

    /// Whether this handle is wired to a live report.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for idx in 1..64 {
            // Every bucket's upper bound maps back into the bucket.
            assert_eq!(bucket_of(bucket_upper(idx)), idx);
        }
    }

    #[test]
    fn percentiles_are_upper_bounds_clamped_to_max() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 1000);
        // Rank 3 of 5 lands in the bucket of 3 → upper bound 3.
        assert_eq!(s.p50(), 3);
        // p99 → rank 5 → bucket of 1000 is [512, 1023], clamped to 1000.
        assert_eq!(s.p99(), 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_sums_buckets_and_keeps_max() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in 0..100 {
            a.record(v);
            b.record(v * 7);
        }
        let merged = Histogram::default();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let s = merged.snapshot();
        assert_eq!(s.count, 200);
        assert_eq!(s.max, 99 * 7);
        assert_eq!(
            s.sum,
            (0..100).sum::<u64>() + (0..100).map(|v| v * 7).sum::<u64>()
        );
    }

    #[test]
    fn snapshot_json_round_trip() {
        let h = Histogram::default();
        for v in [0u64, 5, 5, 80, 4096] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = Arc::new(Histogram::default());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().max, 3999);
    }
}
