//! Lock-free per-thread event rings for trace-event timelines.
//!
//! When tracing is enabled (see [`crate::enable_tracing`]), every span on
//! the coordinating thread and every [`crate::task`] on a rayon worker
//! appends fixed-size begin/end records to a per-thread ring buffer. Rings
//! register themselves lazily in a global registry the first time a thread
//! records an event, and are drained into the [`crate::RunReport`] by
//! `take_report`.
//!
//! ## Memory model
//!
//! Each ring has exactly **one writer at a time**: the owning thread while
//! it lives, or — for a [`crate::TaskGuard`] that outlives its worker (the
//! rayon shim joins every scoped worker before control returns to the
//! caller) — the thread that drops the guard afterwards. A write loads
//! `head` with `Acquire`, fills the slot with `Relaxed` stores, and
//! publishes with a `Release` store of `head + 1`; the handoff between
//! successive writers and between writer and drainer goes through that
//! acquire/release pair, so a drainer that observes `head == h` also
//! observes every slot write up to `h`. Event names are interned once into
//! a global table (a `Mutex` taken only on first use of a name), so a slot
//! is just two `u64` words: the timestamp and `(name_id << 1) | is_begin`.
//!
//! On overflow the ring wraps and overwrites the **oldest** events; the
//! drainer reports how many were lost (`trace_events_dropped`) by
//! comparing its high-water mark against the live window.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default events per thread ring. At 16 bytes per slot this is 128 KiB
/// per worker thread; a drain resets the window, so only events between
/// two `take_report` calls compete for capacity. Override with
/// [`set_trace_capacity`] (CLI `--trace-buf` / `SNAP_TRACE_BUF`).
pub(crate) const RING_CAPACITY: usize = 8192;

/// Floor for configured capacities: a ring must hold at least one
/// plausible span nest, and a zero capacity would divide by zero in the
/// wraparound index math.
const MIN_RING_CAPACITY: usize = 16;

/// Capacity applied to rings created from now on. Existing rings keep
/// the capacity they were built with (each ring's slot array is fixed at
/// creation), so configure this before enabling tracing.
static CAPACITY: AtomicUsize = AtomicUsize::new(RING_CAPACITY);

/// Set the per-thread event-ring capacity (in events) for rings created
/// after this call. Values below a small floor are clamped. Rings that
/// already exist are unaffected, so call this before [`enable_tracing`] /
/// before the traced workload spawns its workers.
pub fn set_trace_capacity(events: usize) {
    CAPACITY.store(events.max(MIN_RING_CAPACITY), Ordering::Relaxed);
}

/// The capacity new per-thread rings will be created with.
pub fn trace_capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Process-global tracing switch, independent of span collection so the
/// span fast path stays a single `ACTIVE` load.
static TRACING: AtomicBool = AtomicBool::new(false);

/// Monotonic thread-id source for trace events (0 is never handed out, so
/// tid 0 can't collide with a real ring).
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Common timebase for every ring: timestamps are microseconds since this
/// process-wide epoch, fixed the first time tracing is enabled.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch. Shared with the memory-sample
/// buffer in `lib.rs` so mem counter events land on the same timebase
/// as span begin/end events in the exported trace.
#[inline]
pub(crate) fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Turn event recording on. Spans and [`crate::task`]s start appending to
/// per-thread rings; the events ride back on the next `take_report`.
pub fn enable_tracing() {
    epoch();
    TRACING.store(true, Ordering::SeqCst);
}

/// Turn event recording off (rings keep their undrained contents).
pub fn disable_tracing() {
    TRACING.store(false, Ordering::SeqCst);
}

/// Whether event recording is on (one relaxed load).
#[inline]
pub fn is_tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------

struct Interner {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            ids: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern `name`, returning its stable id. Span and task names are a
/// small fixed set of string literals, so the table stays tiny and the
/// leak of one allocation per distinct dynamic name is bounded.
pub(crate) fn intern(name: &str) -> u32 {
    let mut it = interner().lock().unwrap();
    if let Some(&id) = it.ids.get(name) {
        return id;
    }
    let id = it.names.len() as u32;
    let owned: &'static str = Box::leak(name.to_string().into_boxed_str());
    it.names.push(owned);
    it.ids.insert(owned, id);
    id
}

fn resolve_names() -> Vec<&'static str> {
    interner().lock().unwrap().names.clone()
}

// ---------------------------------------------------------------------
// Rings
// ---------------------------------------------------------------------

struct Slot {
    ts_us: AtomicU64,
    /// `(name_id << 1) | is_begin`.
    word: AtomicU64,
}

pub(crate) struct Ring {
    tid: u32,
    slots: Box<[Slot]>,
    /// Total events ever written (published with `Release`).
    head: AtomicU64,
    /// Events consumed by the drainer (written only under the registry
    /// lock).
    drained: AtomicU64,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            slots: (0..trace_capacity())
                .map(|_| Slot {
                    ts_us: AtomicU64::new(0),
                    word: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Append one event. Caller must be the ring's current single writer
    /// (see the module docs for the handoff argument).
    pub(crate) fn push(&self, name_id: u32, is_begin: bool) {
        let h = self.head.load(Ordering::Acquire);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        slot.ts_us.store(now_us(), Ordering::Relaxed);
        slot.word
            .store(((name_id as u64) << 1) | is_begin as u64, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

/// The calling thread's ring, creating and registering it on first use.
pub(crate) fn thread_ring() -> Arc<Ring> {
    THREAD_RING.with(|r| {
        let mut slot = r.borrow_mut();
        if let Some(ring) = slot.as_ref() {
            return Arc::clone(ring);
        }
        // The ring is observer-plane storage with process lifetime (the
        // registry never drops it): exempt it from the tracking
        // allocator so enabling tracing cannot shift the application's
        // peak_live window by the ring capacity.
        let _exempt = crate::alloc::exempt_observer_alloc();
        let ring = Arc::new(Ring::new());
        registry().lock().unwrap().push(Arc::clone(&ring));
        *slot = Some(Arc::clone(&ring));
        ring
    })
}

// ---------------------------------------------------------------------
// Draining
// ---------------------------------------------------------------------

/// One begin/end record from a ring, resolved to its name.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    /// Trace-local thread id (dense, not the OS tid).
    pub tid: u32,
    /// `true` for a begin (`"B"`) record, `false` for an end (`"E"`).
    pub begin: bool,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
}

/// Drain every registered ring: returns the sanitized events (every `B`
/// paired with an `E`, per-ring order preserved) plus, per ring that lost
/// anything, the `(tid, count)` of records lost to wraparound or broken
/// pairs. Rings whose owning threads are gone stay registered but empty
/// after a drain, so repeated drains are cheap; the shim's scoped workers
/// are joined before their results (and guards) reach the caller, so a
/// drain on the coordinator never races a live writer beyond the
/// published `head`.
pub(crate) fn drain() -> (Vec<TraceEvent>, Vec<(u32, u64)>) {
    let names = resolve_names();
    let mut events = Vec::new();
    let mut per_ring_dropped: Vec<(u32, u64)> = Vec::new();
    let rings: Vec<Arc<Ring>> = registry().lock().unwrap().clone();
    for ring in rings {
        let mut dropped = 0u64;
        let head = ring.head.load(Ordering::Acquire);
        let live_start = head.saturating_sub(ring.slots.len() as u64);
        let drained_to = ring.drained.load(Ordering::Relaxed);
        if drained_to >= head {
            continue;
        }
        // Events overwritten before we got to them.
        dropped += live_start.saturating_sub(drained_to);
        let start = live_start.max(drained_to);
        // Per-ring B/E matching: a B whose E was never written (or an E
        // whose B was overwritten) is dropped so the exported trace is
        // always well-formed.
        let mut open: Vec<usize> = Vec::new(); // indices into `pending`
        let mut pending: Vec<(TraceEvent, bool)> = Vec::new(); // (event, keep)
        for i in start..head {
            let slot = &ring.slots[(i % ring.slots.len() as u64) as usize];
            let word = slot.word.load(Ordering::Relaxed);
            let ts_us = slot.ts_us.load(Ordering::Relaxed);
            let is_begin = word & 1 == 1;
            let name_id = (word >> 1) as usize;
            let name = names
                .get(name_id)
                .copied()
                .unwrap_or("<unknown>")
                .to_string();
            let idx = pending.len();
            pending.push((
                TraceEvent {
                    name,
                    tid: ring.tid,
                    begin: is_begin,
                    ts_us,
                },
                false,
            ));
            if is_begin {
                open.push(idx);
            } else {
                // Match the innermost open B with the same name; an E
                // with no matching B stays unkept.
                if let Some(pos) = open
                    .iter()
                    .rposition(|&b| pending[b].0.name == pending[idx].0.name)
                {
                    let b = open.remove(pos);
                    pending[b].1 = true;
                    pending[idx].1 = true;
                }
            }
        }
        ring.drained.store(head, Ordering::Relaxed);
        for (ev, keep) in pending {
            if keep {
                events.push(ev);
            } else {
                dropped += 1;
            }
        }
        if dropped > 0 {
            per_ring_dropped.push((ring.tid, dropped));
        }
    }
    (events, per_ring_dropped)
}

#[cfg(test)]
pub(crate) fn reset_for_tests() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::trace_test_lock as lock;

    /// Records lost by the ring with this `tid`, per the drain's
    /// per-ring accounting.
    fn dropped_for(tid: u32, drops: &[(u32, u64)]) -> u64 {
        drops
            .iter()
            .filter(|&&(t, _)| t == tid)
            .map(|&(_, d)| d)
            .sum()
    }

    #[test]
    fn events_drain_in_order_with_pairs_matched() {
        let _l = lock();
        reset_for_tests();
        let ring = thread_ring();
        let a = intern("alpha");
        let b = intern("beta");
        ring.push(a, true);
        ring.push(b, true);
        ring.push(b, false);
        ring.push(a, false);
        let (events, drops) = drain();
        let mine: Vec<_> = events.iter().filter(|e| e.tid == ring.tid).collect();
        assert_eq!(dropped_for(ring.tid, &drops), 0);
        assert_eq!(
            mine.iter()
                .map(|e| (e.name.as_str(), e.begin))
                .collect::<Vec<_>>(),
            vec![
                ("alpha", true),
                ("beta", true),
                ("beta", false),
                ("alpha", false)
            ]
        );
        // Timestamps are monotone within the ring.
        assert!(mine.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn wraparound_drops_oldest_and_counts_them_per_ring() {
        let _l = lock();
        reset_for_tests();
        let ring = thread_ring();
        let cap = ring.slots.len() as u64;
        let name = intern("spin");
        let total = cap + 100;
        for _ in 0..total / 2 {
            ring.push(name, true);
            ring.push(name, false);
        }
        let (events, drops) = drain();
        let mine: Vec<_> = events.into_iter().filter(|e| e.tid == ring.tid).collect();
        let dropped = dropped_for(ring.tid, &drops);
        // The newest full window survives; everything older was
        // overwritten, and the loss is attributed to *this* ring's tid.
        assert_eq!(mine.len() as u64 + dropped, total);
        assert_eq!(dropped, total - cap);
        // The survivors are the *newest* events: their pair structure is
        // intact (the window starts on a B because events were written in
        // B,E,B,E order and the capacity is even).
        assert!(mine[0].begin);
        assert_eq!(mine.len() as u64, cap);
    }

    #[test]
    fn unmatched_begin_is_dropped_not_exported() {
        let _l = lock();
        reset_for_tests();
        let ring = thread_ring();
        let name = intern("dangling");
        ring.push(name, true); // no matching E
        let (events, drops) = drain();
        assert!(events.iter().all(|e| e.tid != ring.tid));
        assert_eq!(dropped_for(ring.tid, &drops), 1);
    }

    #[test]
    fn drain_resets_the_window() {
        let _l = lock();
        reset_for_tests();
        let ring = thread_ring();
        let name = intern("once");
        ring.push(name, true);
        ring.push(name, false);
        let (first, _) = drain();
        assert_eq!(first.iter().filter(|e| e.tid == ring.tid).count(), 2);
        let (second, drops) = drain();
        assert_eq!(second.iter().filter(|e| e.tid == ring.tid).count(), 0);
        assert_eq!(dropped_for(ring.tid, &drops), 0);
    }

    #[test]
    fn configured_capacity_applies_to_new_rings() {
        let _l = lock();
        reset_for_tests();
        // Existing rings keep their size; a ring born on a fresh thread
        // after the set call gets the configured (clamped) capacity.
        set_trace_capacity(1); // clamps up to the floor
        assert_eq!(trace_capacity(), MIN_RING_CAPACITY);
        set_trace_capacity(64);
        let (tid, seen_cap, survivors) = std::thread::spawn(|| {
            let ring = thread_ring();
            let name = intern("tiny");
            for _ in 0..64 {
                ring.push(name, true);
                ring.push(name, false);
            }
            (ring.tid, ring.slots.len(), 64usize)
        })
        .join()
        .unwrap();
        assert_eq!(seen_cap, 64);
        let (events, drops) = drain();
        let mine = events.iter().filter(|e| e.tid == tid).count();
        // 128 events were written into 64 slots: the newest 64 survive.
        assert_eq!(mine, seen_cap);
        assert_eq!(dropped_for(tid, &drops), (2 * survivors - seen_cap) as u64);
        // Restore the default so later tests (and rings) are unaffected.
        set_trace_capacity(RING_CAPACITY);
    }
}
