//! Parallel-efficiency and critical-path analysis over a [`RunReport`].
//!
//! The rest of the crate *records* parallel execution — spans, per-thread
//! event rings, histograms. This module *explains* it, in the work/depth
//! vocabulary of Dhulipala–Blelloch–Shun: once total work is fixed, the
//! critical path (depth) and the serial fraction bound any further
//! speedup, and per-thread busy time tells you which worker is the
//! straggler.
//!
//! Two analyses, both pure functions of an already-collected report:
//!
//! * [`efficiency`] folds the per-thread begin/end timeline
//!   ([`RunReport::trace`]) into per-thread **busy time** (union of span
//!   intervals, so nesting never double-counts), **parallel efficiency**
//!   (total busy / (threads × wall)), **imbalance skew** (max/mean busy
//!   per thread), and the **serial fraction** of wall time during which
//!   at most one thread was busy — whose reciprocal is the Amdahl
//!   speedup ceiling.
//! * [`critical_path`] walks the span tree along the heaviest child at
//!   every level, attributing each step's **self time** (inclusive
//!   duration minus children): the longest serial chain through the
//!   tree, which parallelizing siblings cannot shorten.
//!
//! [`annotate`] folds the three headline numbers back into the report's
//! root gauges (`parallel_efficiency_pct`, `critical_path_us`,
//! `imbalance_skew`) so [`crate::diff`] can gate efficiency regressions
//! in CI exactly like wall time and memory.
//!
//! A timeline that lost events to ring wraparound would silently skew
//! every number here, so both analyses surface the drop counters the
//! drain recorded ([`Efficiency::dropped_events`] / per-thread
//! [`ThreadBusy::dropped`]) and set [`Efficiency::truncated`].

use crate::json::{write_escaped, write_f64};
use crate::report::{fmt_us, ReportNode, RunReport};

/// Busy-time summary for one traced thread (one event ring).
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadBusy {
    /// Trace-local thread id (dense, starting at 1).
    pub tid: u32,
    /// Microseconds this thread spent inside at least one span: the
    /// union of its span intervals, so nested spans count once.
    pub busy_us: u64,
    /// Begin/end events this thread contributed to the timeline.
    pub events: u64,
    /// Events this thread's ring lost to wraparound or broken pairs
    /// (from the `trace_events_dropped.tid<N>` counters).
    pub dropped: u64,
}

/// Result of [`efficiency`]: how well the wall-clock window was covered
/// by concurrent useful work.
#[derive(Clone, Debug, PartialEq)]
pub struct Efficiency {
    /// Analyzed wall window, microseconds: the extent of the trace
    /// timeline when events exist, else the root span's duration.
    pub wall_us: u64,
    /// Distinct traced threads.
    pub threads: usize,
    /// Sum of per-thread busy time.
    pub total_busy_us: u64,
    /// `100 × total_busy / (threads × wall)` — 100 means every thread
    /// was inside a span for the whole window.
    pub parallel_efficiency_pct: f64,
    /// Max busy / mean busy across threads (≥ 1; 1 is perfectly even).
    pub imbalance_skew: f64,
    /// Microseconds of the wall window during which at most one thread
    /// was busy (includes fully-idle gaps).
    pub serial_us: u64,
    /// `100 × serial / wall`.
    pub serial_fraction_pct: f64,
    /// Amdahl-style ceiling with unlimited threads: `wall / serial`
    /// (capped at `wall` when no serial time was observed).
    pub speedup_ceiling: f64,
    /// Per-thread breakdown, sorted by tid.
    pub per_thread: Vec<ThreadBusy>,
    /// Total events lost across all rings (`trace_events_dropped`).
    pub dropped_events: u64,
    /// True when any ring lost events: every number above is then a
    /// lower-bound estimate over an incomplete timeline.
    pub truncated: bool,
}

/// One step along the critical path, from the root downward.
#[derive(Clone, Debug, PartialEq)]
pub struct CritStep {
    pub name: String,
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// Inclusive duration of this span, microseconds.
    pub total_us: u64,
    /// Self time: inclusive duration minus the children's inclusive
    /// durations (saturating) — this step's own contribution.
    pub self_us: u64,
    /// Completed activations of the (possibly coalesced) span.
    pub calls: u64,
}

/// Result of [`critical_path`]: the longest serial chain through the
/// span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Length of the chain, microseconds: the sum of the steps' self
    /// times. Parallelizing siblings cannot push below this.
    pub critical_path_us: u64,
    /// The chain itself, root first.
    pub steps: Vec<CritStep>,
    /// Spans in the whole tree, for context in renderings.
    pub span_count: usize,
}

/// Analyze the per-thread timeline of `report` (see [`Efficiency`]).
///
/// Deterministic: a pure fold over the recorded events, so the same
/// report file yields byte-identical output no matter how many threads
/// the *analyzing* process runs.
pub fn efficiency(report: &RunReport) -> Efficiency {
    // Per-thread busy intervals: track span nesting depth per tid; the
    // thread is busy from the event that takes depth 0→1 until the one
    // that returns it to 0. Events within a tid are in ring order, which
    // is timestamp-monotone.
    let mut tids: Vec<u32> = report.trace.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut intervals: Vec<(u64, u64)> = Vec::new();
    let mut per_thread = Vec::with_capacity(tids.len());
    for &tid in &tids {
        let mut depth = 0u32;
        let mut opened = 0u64;
        let mut busy = 0u64;
        let mut events = 0u64;
        for ev in report.trace.iter().filter(|e| e.tid == tid) {
            events += 1;
            if ev.begin {
                if depth == 0 {
                    opened = ev.ts_us;
                }
                depth += 1;
            } else if depth > 0 {
                depth -= 1;
                if depth == 0 {
                    busy += ev.ts_us.saturating_sub(opened);
                    intervals.push((opened, ev.ts_us));
                }
            }
        }
        let dropped = report
            .root
            .counter(&format!("trace_events_dropped.tid{tid}"))
            .unwrap_or(0);
        per_thread.push(ThreadBusy {
            tid,
            busy_us: busy,
            events,
            dropped,
        });
    }

    let wall_us = if report.trace.is_empty() {
        report.root.duration_us
    } else {
        let lo = report.trace.iter().map(|e| e.ts_us).min().unwrap_or(0);
        let hi = report.trace.iter().map(|e| e.ts_us).max().unwrap_or(0);
        hi - lo
    };
    let threads = per_thread.len();
    let total_busy_us: u64 = per_thread.iter().map(|t| t.busy_us).sum();
    let denom = threads as f64 * wall_us as f64;
    let parallel_efficiency_pct = if denom > 0.0 {
        100.0 * total_busy_us as f64 / denom
    } else {
        0.0
    };
    let mean_busy = if threads > 0 {
        total_busy_us as f64 / threads as f64
    } else {
        0.0
    };
    let max_busy = per_thread.iter().map(|t| t.busy_us).max().unwrap_or(0);
    let imbalance_skew = if mean_busy > 0.0 {
        max_busy as f64 / mean_busy
    } else {
        1.0
    };

    // Serial time: sweep the merged busy intervals and sum the stretches
    // of the wall window with concurrency ≤ 1.
    let serial_us = if report.trace.is_empty() {
        wall_us
    } else {
        let lo = report.trace.iter().map(|e| e.ts_us).min().unwrap_or(0);
        let hi = lo + wall_us;
        let mut edges: Vec<(u64, i32)> = Vec::with_capacity(intervals.len() * 2);
        for &(s, e) in &intervals {
            edges.push((s, 1));
            edges.push((e, -1));
        }
        edges.sort_unstable();
        let mut serial = 0u64;
        let mut concurrency = 0i32;
        let mut prev = lo;
        for (ts, delta) in edges {
            if concurrency <= 1 {
                serial += ts.saturating_sub(prev);
            }
            prev = ts.max(prev);
            concurrency += delta;
        }
        if concurrency <= 1 {
            serial += hi.saturating_sub(prev);
        }
        serial.min(wall_us)
    };
    let serial_fraction_pct = if wall_us > 0 {
        100.0 * serial_us as f64 / wall_us as f64
    } else {
        0.0
    };
    let speedup_ceiling = if wall_us == 0 {
        1.0
    } else if serial_us == 0 {
        wall_us as f64
    } else {
        wall_us as f64 / serial_us as f64
    };

    let dropped_events = report.root.counter("trace_events_dropped").unwrap_or(0);
    Efficiency {
        wall_us,
        threads,
        total_busy_us,
        parallel_efficiency_pct,
        imbalance_skew,
        serial_us,
        serial_fraction_pct,
        speedup_ceiling,
        per_thread,
        dropped_events,
        truncated: dropped_events > 0,
    }
}

/// Walk `report`'s span tree along the heaviest (by inclusive duration)
/// child at every level, breaking ties toward the first child — a
/// deterministic descent, so identical reports analyze identically.
pub fn critical_path(report: &RunReport) -> CriticalPath {
    fn self_us(node: &ReportNode) -> u64 {
        node.duration_us
            .saturating_sub(node.children.iter().map(|c| c.duration_us).sum())
    }
    let mut steps = Vec::new();
    let mut node = &report.root;
    let mut depth = 0usize;
    loop {
        steps.push(CritStep {
            name: node.name.clone(),
            depth,
            total_us: node.duration_us,
            self_us: self_us(node),
            calls: node.calls,
        });
        let Some(heaviest) = node.children.iter().max_by(|a, b| {
            // max_by keeps the *last* max; compare so earlier children
            // win ties (strictly-greater replaces).
            a.duration_us
                .cmp(&b.duration_us)
                .then(std::cmp::Ordering::Greater)
        }) else {
            break;
        };
        // `then(Greater)` above makes equal-duration comparisons resolve
        // toward the earlier element; guard against an empty-duration
        // descent looping forever is unnecessary (children are finite).
        node = heaviest;
        depth += 1;
    }
    let critical_path_us = steps.iter().map(|s| s.self_us).sum();
    CriticalPath {
        critical_path_us,
        steps,
        span_count: report.root.span_count(),
    }
}

/// The three headline gauges [`annotate`] folds into a report's root.
pub fn key_gauges(report: &RunReport) -> Vec<(String, f64)> {
    let eff = efficiency(report);
    let crit = critical_path(report);
    vec![
        (
            "parallel_efficiency_pct".to_string(),
            eff.parallel_efficiency_pct,
        ),
        ("critical_path_us".to_string(), crit.critical_path_us as f64),
        ("imbalance_skew".to_string(), eff.imbalance_skew),
    ]
}

/// Compute [`key_gauges`] and set them on `report.root`, replacing any
/// previous values (idempotent), so `obs diff` can gate efficiency the
/// way it gates wall time and memory.
pub fn annotate(report: &mut RunReport) {
    let gauges = key_gauges(report);
    for (name, value) in gauges {
        if let Some(slot) = report.root.gauges.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            report.root.gauges.push((name, value));
        }
    }
}

impl Efficiency {
    /// Compact JSON object (one line), schema-stable for scripts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"wall_us\":{}", self.wall_us));
        out.push_str(&format!(",\"threads\":{}", self.threads));
        out.push_str(&format!(",\"total_busy_us\":{}", self.total_busy_us));
        out.push_str(",\"parallel_efficiency_pct\":");
        write_f64(&mut out, round2(self.parallel_efficiency_pct));
        out.push_str(",\"imbalance_skew\":");
        write_f64(&mut out, round2(self.imbalance_skew));
        out.push_str(&format!(",\"serial_us\":{}", self.serial_us));
        out.push_str(",\"serial_fraction_pct\":");
        write_f64(&mut out, round2(self.serial_fraction_pct));
        out.push_str(",\"speedup_ceiling\":");
        write_f64(&mut out, round2(self.speedup_ceiling));
        out.push_str(&format!(",\"dropped_events\":{}", self.dropped_events));
        out.push_str(&format!(",\"truncated\":{}", self.truncated));
        out.push_str(",\"per_thread\":[");
        for (i, t) in self.per_thread.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tid\":{},\"busy_us\":{},\"events\":{},\"dropped\":{}}}",
                t.tid, t.busy_us, t.events, t.dropped
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human rendering, one fact per line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "parallel efficiency {:.1}%  (busy {} across {} thread(s) x {} wall)\n",
            self.parallel_efficiency_pct,
            fmt_us(self.total_busy_us),
            self.threads,
            fmt_us(self.wall_us),
        );
        out.push_str(&format!(
            "imbalance skew {:.2}  (max/mean busy per thread)\n",
            self.imbalance_skew
        ));
        out.push_str(&format!(
            "serial fraction {:.1}%  ({} serial; speedup ceiling {:.1}x)\n",
            self.serial_fraction_pct,
            fmt_us(self.serial_us),
            self.speedup_ceiling
        ));
        if self.truncated {
            out.push_str(&format!(
                "WARNING: timeline truncated, {} event(s) dropped — numbers are lower bounds\n",
                self.dropped_events
            ));
        }
        for t in &self.per_thread {
            let pct = if self.wall_us > 0 {
                100.0 * t.busy_us as f64 / self.wall_us as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  tid {:>3}  busy {:>10}  ({:>5.1}% of wall, {} events{})\n",
                t.tid,
                fmt_us(t.busy_us),
                pct,
                t.events,
                if t.dropped > 0 {
                    format!(", {} dropped", t.dropped)
                } else {
                    String::new()
                }
            ));
        }
        out
    }
}

impl CriticalPath {
    /// Compact JSON object (one line), schema-stable for scripts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"critical_path_us\":{}", self.critical_path_us));
        out.push_str(&format!(",\"span_count\":{}", self.span_count));
        out.push_str(",\"steps\":[");
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &s.name);
            out.push_str(&format!(
                ",\"depth\":{},\"total_us\":{},\"self_us\":{},\"calls\":{}}}",
                s.depth, s.total_us, s.self_us, s.calls
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human rendering: the chain with per-step self-time shares.
    pub fn render(&self) -> String {
        let mut out = format!(
            "critical path {}  ({} step(s) through {} span(s))\n",
            fmt_us(self.critical_path_us),
            self.steps.len(),
            self.span_count
        );
        for s in &self.steps {
            let pct = if self.critical_path_us > 0 {
                100.0 * s.self_us as f64 / self.critical_path_us as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:indent$}{}  total {}  self {}  ({:.1}% of path, {} call(s))\n",
                "",
                s.name,
                fmt_us(s.total_us),
                fmt_us(s.self_us),
                pct,
                s.calls,
                indent = s.depth * 2
            ));
        }
        out
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn ev(tid: u32, begin: bool, ts_us: u64) -> TraceEvent {
        TraceEvent {
            name: "work".to_string(),
            tid,
            begin,
            ts_us,
        }
    }

    fn report_with(trace: Vec<TraceEvent>, root: ReportNode) -> RunReport {
        RunReport {
            root,
            trace,
            mem_samples: Vec::new(),
        }
    }

    #[test]
    fn one_thread_fully_busy_is_hundred_percent() {
        // Degenerate case: a single thread inside one span for the whole
        // window — efficiency 100, skew 1, everything serial.
        let r = report_with(
            vec![ev(1, true, 0), ev(1, false, 1000)],
            ReportNode::default(),
        );
        let e = efficiency(&r);
        assert_eq!(e.threads, 1);
        assert_eq!(e.wall_us, 1000);
        assert_eq!(e.total_busy_us, 1000);
        assert_eq!(e.parallel_efficiency_pct, 100.0);
        assert_eq!(e.imbalance_skew, 1.0);
        assert_eq!(e.serial_us, 1000);
        assert!((e.speedup_ceiling - 1.0).abs() < 1e-9);
        assert!(!e.truncated);
    }

    #[test]
    fn nested_spans_count_once_toward_busy() {
        // Overlapping (nested) spans on one thread: busy time is the
        // union, not the sum, of the intervals.
        let r = report_with(
            vec![
                ev(1, true, 0),    // outer B
                ev(1, true, 100),  // inner B
                ev(1, false, 900), // inner E
                ev(1, false, 1000),
            ],
            ReportNode::default(),
        );
        let e = efficiency(&r);
        assert_eq!(e.total_busy_us, 1000);
        assert_eq!(e.parallel_efficiency_pct, 100.0);
    }

    #[test]
    fn half_idle_thread_halves_efficiency_and_skews() {
        // tid 1 busy for the whole 1000µs window, tid 2 for half of it:
        // busy = 1500 over 2×1000 ⇒ 75%; skew = 1000/750.
        let r = report_with(
            vec![
                ev(1, true, 0),
                ev(2, true, 0),
                ev(2, false, 500),
                ev(1, false, 1000),
            ],
            ReportNode::default(),
        );
        let e = efficiency(&r);
        assert_eq!(e.threads, 2);
        assert_eq!(e.total_busy_us, 1500);
        assert!((e.parallel_efficiency_pct - 75.0).abs() < 1e-9);
        assert!((e.imbalance_skew - 1000.0 / 750.0).abs() < 1e-9);
        // Second half of the window had only tid 1 busy: serial 500µs,
        // ceiling 2x.
        assert_eq!(e.serial_us, 500);
        assert!((e.speedup_ceiling - 2.0).abs() < 1e-9);
        assert!((e.serial_fraction_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_count_as_serial_time() {
        // Two threads, both idle in the middle: the gap is serial wall.
        let r = report_with(
            vec![
                ev(1, true, 0),
                ev(1, false, 200),
                ev(2, true, 800),
                ev(2, false, 1000),
            ],
            ReportNode::default(),
        );
        let e = efficiency(&r);
        assert_eq!(e.wall_us, 1000);
        assert_eq!(e.serial_us, 1000); // never more than one thread busy
        assert!((e.parallel_efficiency_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dropped_events_flag_truncation_per_thread() {
        let mut root = ReportNode::default();
        root.counters.push(("trace_events_dropped".to_string(), 7));
        root.counters
            .push(("trace_events_dropped.tid2".to_string(), 7));
        let r = report_with(
            vec![
                ev(1, true, 0),
                ev(1, false, 100),
                ev(2, true, 0),
                ev(2, false, 50),
            ],
            root,
        );
        let e = efficiency(&r);
        assert!(e.truncated);
        assert_eq!(e.dropped_events, 7);
        assert_eq!(e.per_thread[0].dropped, 0);
        assert_eq!(e.per_thread[1].dropped, 7);
        assert!(e.render().contains("truncated"));
    }

    fn node(name: &str, duration_us: u64, children: Vec<ReportNode>) -> ReportNode {
        ReportNode {
            name: name.to_string(),
            duration_us,
            calls: 1,
            children,
            ..Default::default()
        }
    }

    #[test]
    fn critical_path_follows_the_heaviest_chain() {
        // root(1000) → b(600) → b2(500); sibling a(300) loses.
        let tree = node(
            "root",
            1000,
            vec![
                node("a", 300, Vec::new()),
                node("b", 600, vec![node("b2", 500, Vec::new())]),
            ],
        );
        let r = report_with(Vec::new(), tree);
        let c = critical_path(&r);
        let names: Vec<&str> = c.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["root", "b", "b2"]);
        // Self times: root 1000-900=100, b 600-500=100, b2 500.
        assert_eq!(
            c.steps.iter().map(|s| s.self_us).collect::<Vec<_>>(),
            [100, 100, 500]
        );
        assert_eq!(c.critical_path_us, 700);
        assert_eq!(c.span_count, 4);
    }

    #[test]
    fn critical_path_ties_break_toward_the_first_child() {
        let tree = node(
            "root",
            100,
            vec![
                node("first", 40, Vec::new()),
                node("second", 40, Vec::new()),
            ],
        );
        let r = report_with(Vec::new(), tree);
        let c = critical_path(&r);
        assert_eq!(c.steps[1].name, "first");
    }

    #[test]
    fn annotate_folds_gauges_onto_the_root_idempotently() {
        let mut r = report_with(
            vec![ev(1, true, 0), ev(1, false, 1000)],
            node("root", 1000, Vec::new()),
        );
        annotate(&mut r);
        assert_eq!(r.root.gauge("parallel_efficiency_pct"), Some(100.0));
        assert_eq!(r.root.gauge("critical_path_us"), Some(1000.0));
        assert_eq!(r.root.gauge("imbalance_skew"), Some(1.0));
        let before = r.root.gauges.len();
        annotate(&mut r);
        assert_eq!(
            r.root.gauges.len(),
            before,
            "annotate must replace, not append"
        );
    }

    #[test]
    fn empty_trace_falls_back_to_the_span_tree() {
        let r = report_with(Vec::new(), node("root", 500, Vec::new()));
        let e = efficiency(&r);
        assert_eq!(e.threads, 0);
        assert_eq!(e.wall_us, 500);
        assert_eq!(e.parallel_efficiency_pct, 0.0);
        let c = critical_path(&r);
        assert_eq!(c.critical_path_us, 500);
    }

    #[test]
    fn json_outputs_parse_back() {
        let r = report_with(
            vec![
                ev(1, true, 0),
                ev(2, true, 10),
                ev(2, false, 600),
                ev(1, false, 1000),
            ],
            node("root", 1000, vec![node("child", 900, Vec::new())]),
        );
        let e = efficiency(&r);
        let parsed = crate::Json::parse(&e.to_json()).expect("efficiency json parses");
        assert_eq!(parsed.get("threads").and_then(crate::Json::as_u64), Some(2));
        assert_eq!(
            parsed
                .get("per_thread")
                .and_then(crate::Json::as_arr)
                .map(<[crate::Json]>::len),
            Some(2)
        );
        let c = critical_path(&r);
        let parsed = crate::Json::parse(&c.to_json()).expect("critical-path json parses");
        assert_eq!(
            parsed.get("critical_path_us").and_then(crate::Json::as_u64),
            Some(1000)
        );
    }
}
