//! Span-attributed tracking allocator.
//!
//! [`TrackingAlloc`] wraps any [`GlobalAlloc`] and keeps relaxed-atomic
//! global totals (`bytes_live`, `peak_live`, `alloc_count`, …) plus
//! per-thread deltas that the span layer in `lib.rs` attributes to the
//! active span at guard boundaries. The design mirrors the `TRACING`
//! master switch in `ring.rs`:
//!
//! * **Disabled path** — a single relaxed load of `MEM_TRACK` per
//!   allocator call, then straight through to the inner allocator.
//! * **Enabled path** — relaxed `fetch_add`s on the global counters and
//!   plain `Cell` bumps on the per-thread counters. No locks, no
//!   allocation, no reentrancy: the hooks never touch the span tree
//!   (which allocates); instead `MemScope` snapshots the thread
//!   counters when a span opens and folds the delta into the span node
//!   when it closes.
//!
//! Per-thread peak tracking uses a *windowed* scheme so nested spans can
//! each report their own peak-live delta: opening a scope saves the
//! current window peak and restarts the window at the current live
//! value; closing it reports `max(window_peak - live_at_open, 0)` and
//! restores the outer window as `max(saved, inner_peak)`.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Master switch. Mirrors `TRACING`: one relaxed load when off.
static MEM_TRACK: AtomicBool = AtomicBool::new(false);

// Global totals. Live/peak are signed so frees of blocks allocated
// before tracking was enabled cannot wrap; readers clamp at zero.
static G_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static G_FREED: AtomicU64 = AtomicU64::new(0);
static G_ALLOCS: AtomicU64 = AtomicU64::new(0);
static G_LIVE: AtomicI64 = AtomicI64::new(0);
static G_PEAK: AtomicI64 = AtomicI64::new(0);

thread_local! {
    // const-init Cells of Copy types: no Drop glue, no lazy
    // allocation, so the allocator hooks can bump them safely even
    // during TLS setup/teardown (guarded by `try_with`).
    static T_ALLOCATED: Cell<u64> = const { Cell::new(0) };
    static T_FREED: Cell<u64> = const { Cell::new(0) };
    static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static T_LIVE: Cell<i64> = const { Cell::new(0) };
    static T_PEAK: Cell<i64> = const { Cell::new(0) };
}

/// Turn memory tracking on. Counters keep their values; call
/// [`reset_peak_live`] if you want a fresh peak window.
pub fn enable_mem_tracking() {
    MEM_TRACK.store(true, Ordering::Relaxed);
}

/// Turn memory tracking off. Allocator calls revert to a single
/// relaxed load of the master switch.
pub fn disable_mem_tracking() {
    MEM_TRACK.store(false, Ordering::Relaxed);
}

/// Is the tracking allocator currently recording?
///
/// Also `false` when no [`TrackingAlloc`] is installed as the global
/// allocator — the switch is only observed from inside the hooks.
#[inline]
pub fn is_mem_tracking() -> bool {
    MEM_TRACK.load(Ordering::Relaxed)
}

/// Restart the global peak-live window at the current live volume.
/// Benchmark harnesses call this between cases so each case reports
/// its own high-water mark.
pub fn reset_peak_live() {
    G_PEAK.store(G_LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// A point-in-time view of the global allocator counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Total bytes handed out since tracking started.
    pub allocated: u64,
    /// Total bytes returned since tracking started.
    pub freed: u64,
    /// Number of allocation events (alloc + realloc).
    pub allocs: u64,
    /// Bytes currently live (clamped at zero).
    pub bytes_live: u64,
    /// High-water mark of `bytes_live` since the last
    /// [`reset_peak_live`] (clamped at zero).
    pub peak_live: u64,
}

/// Read the global counters.
pub fn mem_snapshot() -> MemSnapshot {
    MemSnapshot {
        allocated: G_ALLOCATED.load(Ordering::Relaxed),
        freed: G_FREED.load(Ordering::Relaxed),
        allocs: G_ALLOCS.load(Ordering::Relaxed),
        bytes_live: G_LIVE.load(Ordering::Relaxed).max(0) as u64,
        peak_live: G_PEAK.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// A point-in-time view of the calling thread's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadMem {
    /// Bytes this thread has allocated since tracking started.
    pub allocated: u64,
    /// Bytes this thread has freed since tracking started.
    pub freed: u64,
    /// Allocation events on this thread.
    pub allocs: u64,
    /// This thread's net live bytes (may be negative if it frees
    /// blocks other threads allocated).
    pub live: i64,
}

/// Read the calling thread's counters.
pub fn thread_mem() -> ThreadMem {
    ThreadMem {
        allocated: T_ALLOCATED.with(Cell::get),
        freed: T_FREED.with(Cell::get),
        allocs: T_ALLOCS.with(Cell::get),
        live: T_LIVE.with(Cell::get),
    }
}

/// Thread-counter snapshot taken when a span opens; the span layer
/// closes it to compute the span's memory delta.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MemScope {
    allocated0: u64,
    freed0: u64,
    allocs0: u64,
    live0: i64,
    saved_peak: i64,
}

/// The memory delta a closed (or still-open) scope attributes to its
/// span node.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct MemDelta {
    pub allocated: u64,
    pub freed: u64,
    pub allocs: u64,
    pub peak_delta: u64,
}

impl MemDelta {
    pub(crate) fn is_zero(&self) -> bool {
        self.allocated == 0 && self.freed == 0 && self.allocs == 0 && self.peak_delta == 0
    }
}

/// Open a scope: snapshot the thread counters and restart the
/// thread-local peak window at the current live value.
pub(crate) fn begin_scope() -> MemScope {
    let live = T_LIVE.with(Cell::get);
    MemScope {
        allocated0: T_ALLOCATED.with(Cell::get),
        freed0: T_FREED.with(Cell::get),
        allocs0: T_ALLOCS.with(Cell::get),
        live0: live,
        saved_peak: T_PEAK.with(|p| p.replace(live)),
    }
}

/// Read a scope's delta without closing it — used by `take_report` to
/// fold spans that are still open. The window peak of an outer scope
/// understates while an inner scope is open (the inner scope holds the
/// outer window's high-water mark until it closes); that is an accepted
/// approximation for snapshot folding.
pub(crate) fn scope_delta(scope: &MemScope) -> MemDelta {
    let window_peak = T_PEAK.with(Cell::get).max(T_LIVE.with(Cell::get));
    MemDelta {
        allocated: T_ALLOCATED.with(Cell::get).wrapping_sub(scope.allocated0),
        freed: T_FREED.with(Cell::get).wrapping_sub(scope.freed0),
        allocs: T_ALLOCS.with(Cell::get).wrapping_sub(scope.allocs0),
        peak_delta: (window_peak - scope.live0).max(0) as u64,
    }
}

/// Close a scope: compute its delta and restore the outer peak window.
pub(crate) fn end_scope(scope: MemScope) -> MemDelta {
    let delta = scope_delta(&scope);
    T_PEAK.with(|p| p.set(p.get().max(scope.saved_peak)));
    delta
}

thread_local! {
    static T_EXEMPT: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard making the current thread's allocations invisible to the
/// tracking counters while held. Strictly for observer-plane storage
/// that lives for the process lifetime (the per-thread trace-event
/// rings): the counters are asymmetric for exempt memory — a later
/// tracked free of an exempt allocation would drive `bytes_live`
/// negative — so nothing allocated under this guard may ever be freed.
/// Keeps the application's `peak_live` window untouched by how big the
/// observer's own buffers happen to be.
pub(crate) struct ExemptGuard(bool);

pub(crate) fn exempt_observer_alloc() -> ExemptGuard {
    ExemptGuard(T_EXEMPT.with(|c| c.replace(true)))
}

impl Drop for ExemptGuard {
    fn drop(&mut self) {
        let prev = self.0;
        let _ = T_EXEMPT.try_with(|c| c.set(prev));
    }
}

#[inline]
fn is_exempt() -> bool {
    T_EXEMPT.try_with(Cell::get).unwrap_or(false)
}

#[inline]
fn record_alloc(size: usize) {
    let size = size as u64;
    G_ALLOCATED.fetch_add(size, Ordering::Relaxed);
    G_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = G_LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    G_PEAK.fetch_max(live, Ordering::Relaxed);
    // `try_with` so allocations during TLS teardown (after this
    // thread's Cells are gone) silently skip thread attribution.
    let _ = T_ALLOCATED.try_with(|c| c.set(c.get() + size));
    let _ = T_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = T_LIVE.try_with(|c| {
        let live = c.get() + size as i64;
        c.set(live);
        let _ = T_PEAK.try_with(|p| p.set(p.get().max(live)));
    });
}

#[inline]
fn record_free(size: usize) {
    let size = size as u64;
    G_FREED.fetch_add(size, Ordering::Relaxed);
    G_LIVE.fetch_sub(size as i64, Ordering::Relaxed);
    let _ = T_FREED.try_with(|c| c.set(c.get() + size));
    let _ = T_LIVE.try_with(|c| c.set(c.get() - size as i64));
}

/// A [`GlobalAlloc`] wrapper that feeds the counters above. Install it
/// in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: snap_obs::TrackingAlloc<std::alloc::System> =
///     snap_obs::TrackingAlloc::new(std::alloc::System);
/// ```
///
/// and flip it on with [`enable_mem_tracking`]. Until then (and for
/// binaries that never install it) every hook is a relaxed load plus a
/// tail call into the inner allocator.
#[derive(Debug, Default)]
pub struct TrackingAlloc<A> {
    inner: A,
}

impl<A> TrackingAlloc<A> {
    /// Wrap an inner allocator. `const` so it can initialize a
    /// `#[global_allocator]` static.
    pub const fn new(inner: A) -> Self {
        TrackingAlloc { inner }
    }
}

// SAFETY: forwards every call verbatim to the inner allocator; the
// bookkeeping never allocates, never panics (Cell ops + relaxed
// atomics), and never observes the returned pointer beyond a null
// check.
unsafe impl<A: GlobalAlloc> GlobalAlloc for TrackingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc(layout);
        if MEM_TRACK.load(Ordering::Relaxed) && !p.is_null() && !is_exempt() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc_zeroed(layout);
        if MEM_TRACK.load(Ordering::Relaxed) && !p.is_null() && !is_exempt() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if MEM_TRACK.load(Ordering::Relaxed) && !is_exempt() {
            record_free(layout.size());
        }
        self.inner.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = self.inner.realloc(ptr, layout, new_size);
        if MEM_TRACK.load(Ordering::Relaxed) && !p.is_null() && !is_exempt() {
            record_free(layout.size());
            record_alloc(new_size);
        }
        p
    }
}
