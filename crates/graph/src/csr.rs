//! Static compressed-sparse-row (adjacency array) graph.
//!
//! This is SNAP's primary representation: one offsets array of length
//! `n + 1` and flat arrays of arc targets / edge ids, giving cache-friendly
//! sequential scans over adjacencies and O(1) degree queries.

use crate::traits::{Graph, WeightedGraph};
use crate::{EdgeId, VertexId, Weight};

/// Immutable adjacency-array graph.
///
/// Construct via [`crate::GraphBuilder`]; direct field construction is not
/// exposed so the invariants below always hold:
///
/// * `offsets.len() == n + 1`, monotonically non-decreasing,
///   `offsets[n] == targets.len()`;
/// * for undirected graphs every edge `{u, v}` appears as two arcs
///   `u -> v` and `v -> u` sharing one [`EdgeId`];
/// * `endpoints[e]` stores the canonical endpoints of edge `e`
///   (`u <= v` for undirected graphs);
/// * `weights` is either empty (unweighted, all weights 1) or has one entry
///   per edge id.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    pub(crate) offsets: Vec<usize>,
    pub(crate) targets: Vec<VertexId>,
    pub(crate) arc_edge_ids: Vec<EdgeId>,
    pub(crate) endpoints: Vec<(VertexId, VertexId)>,
    pub(crate) weights: Vec<Weight>,
    pub(crate) directed: bool,
}

impl CsrGraph {
    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize, directed: bool) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            arc_edge_ids: Vec::new(),
            endpoints: Vec::new(),
            weights: Vec::new(),
            directed,
        }
    }

    /// Slice of out-neighbors of `v` (fast path used by the kernels when the
    /// concrete type is known).
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Slice of edge ids of the out-arcs of `v`, parallel to
    /// [`Self::neighbor_slice`].
    #[inline]
    pub fn eid_slice(&self, v: VertexId) -> &[EdgeId] {
        &self.arc_edge_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// True if the graph carries non-unit weights.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Bytes resident for the adjacency structure (offsets + targets +
    /// per-arc edge ids). The flat-backend counterpart of
    /// [`crate::CompressedCsrGraph::adjacency_bytes`]; edge payload
    /// (endpoints, weights) is identical across backends and excluded.
    pub fn adjacency_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * 4
            + self.arc_edge_ids.len() * 4
    }

    /// Iterate over all edges as `(edge_id, u, v)` with canonical endpoints.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e as EdgeId, u, v))
    }

    /// Maximum out-degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Check structural invariants. Used by tests and debug assertions; cost
    /// is O(n + m).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.offsets.len() != n + 1 {
            return Err("offsets length mismatch".into());
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets not monotone".into());
        }
        if *self.offsets.last().unwrap() != self.targets.len() {
            return Err("final offset != targets.len()".into());
        }
        if self.targets.len() != self.arc_edge_ids.len() {
            return Err("targets/arc_edge_ids length mismatch".into());
        }
        if !self.weights.is_empty() && self.weights.len() != self.endpoints.len() {
            return Err("weights length != edge count".into());
        }
        for &t in &self.targets {
            if (t as usize) >= n {
                return Err(format!("arc target {t} out of range"));
            }
        }
        for &e in &self.arc_edge_ids {
            if (e as usize) >= self.endpoints.len() {
                return Err(format!("edge id {e} out of range"));
            }
        }
        // Every undirected edge must appear as exactly two arcs with the
        // same id; every directed edge as exactly one.
        let mut arc_count = vec![0u8; self.endpoints.len()];
        for &e in &self.arc_edge_ids {
            arc_count[e as usize] = arc_count[e as usize].saturating_add(1);
        }
        let expected = if self.directed { 1 } else { 2 };
        for (e, &c) in arc_count.iter().enumerate() {
            // Self-loops in undirected graphs are stored as a single arc.
            let (u, v) = self.endpoints[e];
            let exp = if !self.directed && u == v {
                1
            } else {
                expected
            };
            if c != exp {
                return Err(format!("edge {e} has {c} arcs, expected {exp}"));
            }
        }
        Ok(())
    }
}

impl Graph for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    #[inline]
    fn is_directed(&self) -> bool {
        self.directed
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbor_slice(v).iter().copied()
    }

    #[inline]
    fn neighbors_with_eid(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.neighbor_slice(v)
            .iter()
            .copied()
            .zip(self.eid_slice(v).iter().copied())
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e as usize]
    }
}

impl WeightedGraph for CsrGraph {
    #[inline]
    fn edge_weight(&self, e: EdgeId) -> Weight {
        if self.weights.is_empty() {
            1
        } else {
            self.weights[e as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::undirected(3)
            .add_edges([(0, 1), (1, 2), (0, 2)])
            .build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5, false);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        g.validate().unwrap();
    }

    #[test]
    fn shared_edge_ids_on_both_arcs() {
        let g = triangle();
        // The edge id seen from u for neighbor v must equal the id seen
        // from v for neighbor u.
        for u in g.vertices() {
            for (v, e) in g.neighbors_with_eid(u) {
                let back = g
                    .neighbors_with_eid(v)
                    .find(|&(w, _)| w == u)
                    .expect("reverse arc");
                assert_eq!(back.1, e);
                let (a, b) = g.edge_endpoints(e);
                assert_eq!((a.min(b), a.max(b)), (u.min(v), u.max(v)));
            }
        }
    }

    #[test]
    fn unit_weights_by_default() {
        let g = triangle();
        assert!(!g.is_weighted());
        for e in 0..g.num_edges() as EdgeId {
            assert_eq!(g.edge_weight(e), 1);
        }
    }

    #[test]
    fn total_degree_matches_arcs() {
        let g = triangle();
        assert_eq!(g.total_degree(), g.num_arcs());
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle();
        let edges: Vec<_> = g.edges().map(|(_, u, v)| (u, v)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }
}
