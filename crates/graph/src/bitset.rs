//! Compact bit vectors, including an atomic variant for the lock-free
//! level-synchronous traversals (visited sets) described in the paper.

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

/// Plain (single-threaded) bitmap.
#[derive(Clone, Debug)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap over `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// All-ones bitmap over `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        // Clear the tail beyond `len`.
        let tail = len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = b.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Set bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1 << (i % WORD_BITS));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Reset all bits to zero, keeping the allocation.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + bit)
                }
            })
        })
    }
}

/// Bitmap with atomic test-and-set, shared across rayon workers.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// All-zeros atomic bitmap over `len` bits.
    pub fn new(len: usize) -> Self {
        let mut words = Vec::with_capacity(len.div_ceil(WORD_BITS));
        words.resize_with(len.div_ceil(WORD_BITS), || AtomicU64::new(0));
        AtomicBitmap { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS].load(Ordering::Relaxed) >> (i % WORD_BITS) & 1 == 1
    }

    /// Atomically set bit `i`; returns `true` if this call changed it
    /// from 0 to 1 (i.e. the caller "won" the vertex). This is the
    /// fetch-or claim used by the lock-free BFS.
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % WORD_BITS);
        let prev = self.words[i / WORD_BITS].fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(129));
        b.set(129);
        assert!(b.get(129));
        b.clear(129);
        assert!(!b.get(129));
    }

    #[test]
    fn ones_respects_length() {
        let b = Bitmap::ones(67);
        assert_eq!(b.count_ones(), 67);
        assert!(b.get(66));
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = Bitmap::new(200);
        for i in [0, 63, 64, 128, 199] {
            b.set(i);
        }
        let v: Vec<usize> = b.iter_ones().collect();
        assert_eq!(v, vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn clear_all_resets() {
        let mut b = Bitmap::ones(100);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn atomic_test_and_set_claims_once() {
        let b = AtomicBitmap::new(100);
        assert!(b.test_and_set(42));
        assert!(!b.test_and_set(42));
        assert!(b.get(42));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn atomic_parallel_claims_are_exclusive() {
        use std::sync::atomic::AtomicUsize;
        let b = AtomicBitmap::new(1024);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1024 {
                        if b.test_and_set(i) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1024);
    }
}
