//! # snap-graph
//!
//! Graph representations for the SNAP (Small-world Network Analysis and
//! Partitioning) framework, a Rust reproduction of Bader & Madduri,
//! IPDPS 2008.
//!
//! The paper's data-representation layer provides:
//!
//! * a **static, cache-friendly adjacency-array (CSR) representation**
//!   ([`CsrGraph`]) — the preferred choice for static graph algorithms;
//! * a **compressed CSR** ([`CompressedCsrGraph`]) with delta/varint
//!   difference-encoded adjacency, chunked parallel decode, and a
//!   degree-threshold hybrid mode — the same graph resident at a
//!   fraction of the flat adjacency bytes (see `compressed`);
//! * a **dynamic representation** ([`DynGraph`]) with resizable adjacency
//!   arrays for low-degree vertices and **treaps** ([`Treap`]) for
//!   high-degree vertices, so that insertions/deletions and set operations
//!   on large adjacency lists stay logarithmic;
//! * **filtered views** ([`FilteredGraph`]) that support cheap edge
//!   deletion via an edge-liveness bitmap — the workhorse of the divisive
//!   community-detection algorithms, which repeatedly cut edges;
//! * **induced subgraphs** ([`subgraph::InducedSubgraph`]) used when the
//!   coarse-grained phase of the divisive algorithms processes connected
//!   components independently;
//! * a **streaming engine** ([`StreamingGraph`]) that ingests batched
//!   edge insert/delete ops into the dynamic delta layer and delta-merges
//!   them into epoch-versioned immutable `Arc<CsrGraph>` snapshots, so
//!   readers analyze complete frozen epochs while writers keep ingesting.
//!
//! All representations implement the [`Graph`] trait so the kernels in
//! `snap-kernels` and above remain representation-agnostic.

pub mod bitset;
pub mod builder;
pub mod compressed;
pub mod csr;
pub mod dynamic;
pub mod frontier;
pub mod perm;
pub mod scratch;
pub mod stream;
pub mod subgraph;
pub mod traits;
pub mod treap;
pub mod view;

pub use bitset::{AtomicBitmap, Bitmap};
pub use builder::GraphBuilder;
pub use compressed::{CompressedCsrGraph, DecodeScratch, DEFAULT_HUB_THRESHOLD};
pub use csr::CsrGraph;
pub use dynamic::DynGraph;
pub use frontier::{Frontier, FrontierRepr};
pub use perm::{apply_permutation, bfs_order, degree_order};
pub use scratch::{
    PooledScratch, PooledWorkspace, ScratchPool, TraversalWorkspace, WorkspacePool, WorkspaceStats,
};
pub use stream::{BatchStats, EdgeOp, Snapshot, SnapshotReader, StreamingGraph};
pub use subgraph::InducedSubgraph;
pub use traits::{Graph, WeightedGraph};
pub use treap::Treap;
pub use view::FilteredGraph;

/// Vertex identifier. Graphs in the paper's target range (up to billions of
/// edges) still fit vertex ids in 32 bits, halving the memory traffic of the
/// adjacency arrays relative to `usize` ids.
pub type VertexId = u32;

/// Undirected-edge (or directed-arc, for digraphs) identifier. Both arcs of
/// an undirected edge share one `EdgeId`, which is what lets the divisive
/// clustering algorithms delete an edge with a single bitmap write.
pub type EdgeId = u32;

/// Edge weight. The paper assumes positive integer weights with
/// `w(e) = 1` for unweighted graphs.
pub type Weight = u32;
