//! BFS frontier with an occupancy-adaptive representation.
//!
//! Level-synchronous traversals touch the frontier in two ways: top-down
//! (push) expansion iterates its members, bottom-up (pull) expansion asks
//! membership queries for every scanned arc. A sparse `Vec<VertexId>` is
//! ideal for the first and useless for the second; a dense [`Bitmap`] is
//! the reverse. [`Frontier`] holds either representation, converts on
//! demand, and [`Frontier::normalize`] picks the cheaper one by occupancy
//! so the direction-optimizing BFS can hand the same object to both
//! phases.

use crate::bitset::Bitmap;
use crate::VertexId;

/// Occupancy divisor for [`Frontier::normalize`]: the dense representation
/// is chosen once more than `n / DENSE_DIVISOR` vertices are present (at
/// that point the bitmap is both smaller and faster to probe than the
/// vector is to scan).
pub const DENSE_DIVISOR: usize = 16;

/// Which representation a [`Frontier`] currently holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontierRepr {
    /// Membership list (`Vec<VertexId>`).
    Sparse,
    /// Membership bitmap over all `n` vertices.
    Dense,
}

enum Repr {
    Sparse(Vec<VertexId>),
    Dense { bits: Bitmap, count: usize },
}

/// A set of vertices (one BFS level) over a graph with `n` vertices.
pub struct Frontier {
    n: usize,
    repr: Repr,
}

impl Frontier {
    /// Empty frontier over `n` vertices.
    pub fn new(n: usize) -> Self {
        Frontier {
            n,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// Frontier holding exactly `v`.
    pub fn singleton(n: usize, v: VertexId) -> Self {
        Self::from_vec(n, vec![v])
    }

    /// Sparse frontier from a membership list (must not contain
    /// duplicates; ids must be `< n`).
    pub fn from_vec(n: usize, members: Vec<VertexId>) -> Self {
        debug_assert!(members.iter().all(|&v| (v as usize) < n));
        Frontier {
            n,
            repr: Repr::Sparse(members),
        }
    }

    /// Dense frontier from a bitmap (`bits.len()` must equal `n`).
    pub fn from_bitmap(bits: Bitmap) -> Self {
        let count = bits.count_ones();
        Frontier {
            n: bits.len(),
            repr: Repr::Dense { bits, count },
        }
    }

    /// Number of vertices the underlying graph has.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of vertices in the frontier.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.len(),
            Repr::Dense { count, .. } => *count,
        }
    }

    /// True when no vertex is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current representation.
    pub fn repr(&self) -> FrontierRepr {
        match &self.repr {
            Repr::Sparse(_) => FrontierRepr::Sparse,
            Repr::Dense { .. } => FrontierRepr::Dense,
        }
    }

    /// Membership test. O(1) on the dense representation, O(len) on the
    /// sparse one — callers issuing many queries should
    /// [`Frontier::ensure_dense`] first.
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.repr {
            Repr::Sparse(list) => list.contains(&v),
            Repr::Dense { bits, .. } => bits.get(v as usize),
        }
    }

    /// Iterate over members (ascending order only for the dense form).
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        enum Either<A, B> {
            L(A),
            R(B),
        }
        impl<T, A: Iterator<Item = T>, B: Iterator<Item = T>> Iterator for Either<A, B> {
            type Item = T;
            fn next(&mut self) -> Option<T> {
                match self {
                    Either::L(a) => a.next(),
                    Either::R(b) => b.next(),
                }
            }
        }
        match &self.repr {
            Repr::Sparse(list) => Either::L(list.iter().copied()),
            Repr::Dense { bits, .. } => Either::R(bits.iter_ones().map(|i| i as VertexId)),
        }
    }

    /// Convert to the sparse representation (if needed) and expose the
    /// membership list.
    pub fn ensure_sparse(&mut self) -> &[VertexId] {
        if let Repr::Dense { bits, count } = &self.repr {
            let mut list = Vec::with_capacity(*count);
            list.extend(bits.iter_ones().map(|i| i as VertexId));
            self.repr = Repr::Sparse(list);
        }
        match &self.repr {
            Repr::Sparse(list) => list,
            Repr::Dense { .. } => unreachable!(),
        }
    }

    /// Convert to the dense representation (if needed) and expose the
    /// membership bitmap.
    pub fn ensure_dense(&mut self) -> &Bitmap {
        if let Repr::Sparse(list) = &self.repr {
            let mut bits = Bitmap::new(self.n);
            for &v in list {
                bits.set(v as usize);
            }
            let count = list.len();
            self.repr = Repr::Dense { bits, count };
        }
        match &self.repr {
            Repr::Dense { bits, .. } => bits,
            Repr::Sparse(_) => unreachable!(),
        }
    }

    /// Switch to whichever representation occupancy favors: dense above
    /// `n / DENSE_DIVISOR` members, sparse below.
    pub fn normalize(&mut self) {
        let dense_wins = self.len() > self.n / DENSE_DIVISOR;
        match (&self.repr, dense_wins) {
            (Repr::Sparse(_), true) => {
                self.ensure_dense();
            }
            (Repr::Dense { .. }, false) => {
                self.ensure_sparse();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_roundtrip() {
        let mut f = Frontier::singleton(100, 42);
        assert_eq!(f.len(), 1);
        assert_eq!(f.repr(), FrontierRepr::Sparse);
        assert!(f.contains(42));
        assert!(!f.contains(41));
        let bits = f.ensure_dense();
        assert!(bits.get(42));
        assert_eq!(f.len(), 1);
        assert_eq!(f.repr(), FrontierRepr::Dense);
        assert_eq!(f.ensure_sparse(), &[42]);
    }

    #[test]
    fn normalize_picks_by_occupancy() {
        // 100 vertices: threshold is > 6 members for dense.
        let mut f = Frontier::from_vec(100, (0..6).collect());
        f.normalize();
        assert_eq!(f.repr(), FrontierRepr::Sparse);
        let mut f = Frontier::from_vec(100, (0..7).collect());
        f.normalize();
        assert_eq!(f.repr(), FrontierRepr::Dense);
        assert_eq!(f.len(), 7);
        // And back down once sparse again.
        let mut small = Bitmap::new(100);
        small.set(3);
        let mut f = Frontier::from_bitmap(small);
        f.normalize();
        assert_eq!(f.repr(), FrontierRepr::Sparse);
        assert_eq!(f.ensure_sparse(), &[3]);
    }

    #[test]
    fn iter_covers_both_reprs() {
        let mut f = Frontier::from_vec(64, vec![5, 1, 9]);
        let mut sparse: Vec<VertexId> = f.iter().collect();
        sparse.sort_unstable();
        assert_eq!(sparse, vec![1, 5, 9]);
        f.ensure_dense();
        let dense: Vec<VertexId> = f.iter().collect();
        assert_eq!(dense, vec![1, 5, 9]); // ascending from the bitmap
    }

    #[test]
    fn empty_frontier() {
        let mut f = Frontier::new(10);
        assert!(f.is_empty());
        f.normalize();
        assert_eq!(f.repr(), FrontierRepr::Sparse);
        assert_eq!(f.iter().count(), 0);
    }
}
