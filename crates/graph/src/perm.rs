//! Vertex relabeling. Cache behavior of the adjacency-array kernels
//! depends heavily on vertex order; SNAP's engineering notes call for
//! locality-restoring relabelings before heavy traversal workloads.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::traits::{Graph, WeightedGraph};
use crate::VertexId;

/// Apply a permutation: `perm[old] = new`. Returns the relabeled graph.
/// `perm` must be a bijection on `0..n`.
pub fn apply_permutation(g: &CsrGraph, perm: &[VertexId]) -> CsrGraph {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    debug_assert!(is_permutation(perm));
    let mut b = if g.is_directed() {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::undirected(n)
    }
    .with_capacity(g.num_edges());
    for e in 0..g.num_edges() as u32 {
        let (u, v) = g.edge_endpoints(e);
        b.add_weighted_edge(perm[u as usize], perm[v as usize], g.edge_weight(e));
    }
    b.build()
}

fn is_permutation(perm: &[VertexId]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p as usize >= perm.len() || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

/// Permutation sorting vertices by descending degree (hubs first) —
/// concentrates the hot adjacency rows of skewed graphs.
pub fn degree_order(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
    by_degree.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    // by_degree[new] = old; invert to perm[old] = new.
    let mut perm = vec![0 as VertexId; n];
    for (new, &old) in by_degree.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    perm
}

/// BFS (Cuthill–McKee-flavored) ordering from a low-degree start vertex
/// of each component — restores locality on mesh-like graphs.
pub fn bfs_order(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut perm = vec![VertexId::MAX; n];
    let mut next = 0 as VertexId;
    let mut queue = std::collections::VecDeque::new();
    // Visit components in order of their minimum-degree vertex.
    let mut starts: Vec<VertexId> = (0..n as VertexId).collect();
    starts.sort_by_key(|&v| (g.degree(v), v));
    let mut nbrs: Vec<VertexId> = Vec::new();
    for &s in &starts {
        if perm[s as usize] != VertexId::MAX {
            continue;
        }
        perm[s as usize] = next;
        next += 1;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            nbrs.clear();
            nbrs.extend(
                g.neighbors(u)
                    .filter(|&v| perm[v as usize] == VertexId::MAX),
            );
            // Cuthill-McKee visits neighbors in increasing-degree order.
            nbrs.sort_by_key(|&v| (g.degree(v), v));
            for &v in &nbrs {
                if perm[v as usize] == VertexId::MAX {
                    perm[v as usize] = next;
                    next += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn permutation_preserves_structure() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let perm: Vec<VertexId> = vec![4, 3, 2, 1, 0];
        let h = apply_permutation(&g, &perm);
        assert_eq!(h.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(h.degree(perm[v as usize]), g.degree(v));
            let mut a: Vec<VertexId> = g.neighbors(v).map(|u| perm[u as usize]).collect();
            let mut b: Vec<VertexId> = h.neighbors(perm[v as usize]).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let g = from_edges(5, &[(2, 0), (2, 1), (2, 3), (2, 4), (0, 1)]);
        let perm = degree_order(&g);
        assert_eq!(perm[2], 0); // hub gets label 0
        let h = apply_permutation(&g, &perm);
        assert_eq!(h.degree(0), 4);
    }

    #[test]
    fn bfs_order_is_permutation() {
        let g = from_edges(6, &[(0, 2), (2, 4), (4, 1), (1, 3), (3, 5)]);
        let perm = bfs_order(&g);
        assert!(is_permutation(&perm));
        let h = apply_permutation(&g, &perm);
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn bfs_order_reduces_path_bandwidth() {
        // A shuffled path: BFS order restores consecutive labels.
        let g = from_edges(6, &[(3, 1), (1, 5), (5, 0), (0, 4), (4, 2)]);
        let perm = bfs_order(&g);
        let h = apply_permutation(&g, &perm);
        // Bandwidth = max |u - v| over edges.
        let bandwidth = |g: &CsrGraph| {
            g.edges()
                .map(|(_, u, v)| (u as i64 - v as i64).unsigned_abs())
                .max()
                .unwrap()
        };
        assert!(bandwidth(&h) <= 2, "bandwidth {}", bandwidth(&h));
        assert!(bandwidth(&h) <= bandwidth(&g));
    }

    #[test]
    fn weights_preserved() {
        let g = crate::GraphBuilder::undirected(3)
            .add_weighted_edges([(0, 1, 7), (1, 2, 9)])
            .build();
        let h = apply_permutation(&g, &[2, 1, 0]);
        // Edge (1,2) in h corresponds to original (0,1) with weight 7.
        let e = h.edges().find(|&(_, u, v)| (u, v) == (1, 2)).unwrap().0;
        assert_eq!(h.edge_weight(e), 7);
    }

    #[test]
    #[should_panic(expected = "permutation length")]
    fn wrong_length_panics() {
        let g = from_edges(3, &[(0, 1)]);
        apply_permutation(&g, &[0, 1]);
    }
}
