//! Induced subgraph extraction.
//!
//! Once the divisive algorithms have split the network into isolated
//! components, SNAP switches to coarse-grained parallelism: each component
//! is extracted as a compact graph with relabeled vertices and processed
//! independently. [`InducedSubgraph`] carries the local graph plus the
//! local→global vertex and edge mappings needed to report results in the
//! original id space.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::traits::{Graph, WeightedGraph};
use crate::{EdgeId, VertexId};

/// A compact copy of the subgraph induced by a vertex subset.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The extracted graph over local ids `0..k`.
    pub graph: CsrGraph,
    /// `to_global[local] = global` vertex id.
    pub to_global: Vec<VertexId>,
    /// `edge_to_global[local_edge] = global_edge` id in the source graph.
    pub edge_to_global: Vec<EdgeId>,
}

impl InducedSubgraph {
    /// Extract the subgraph of `g` induced by `vertices` (global ids;
    /// duplicates are ignored). Edges are kept when both endpoints are in
    /// the subset and, for filtered sources, live.
    pub fn extract<G: Graph + WeightedGraph>(g: &G, vertices: &[VertexId]) -> Self {
        let n = g.num_vertices();
        // usize::MAX sentinel marks "not in subset".
        let mut local_of = vec![u32::MAX; n];
        let mut to_global = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if local_of[v as usize] == u32::MAX {
                local_of[v as usize] = to_global.len() as u32;
                to_global.push(v);
            }
        }

        let mut builder = GraphBuilder::undirected(to_global.len());
        let mut edge_keys: Vec<(VertexId, VertexId, EdgeId)> = Vec::new();
        if g.is_directed() {
            builder = GraphBuilder::directed(to_global.len());
        }
        for (lu, &gu) in to_global.iter().enumerate() {
            for (gv, e) in g.neighbors_with_eid(gu) {
                let lv = local_of[gv as usize];
                if lv == u32::MAX {
                    continue;
                }
                let lu = lu as VertexId;
                // Emit each undirected edge once (from its canonical side).
                if !g.is_directed() && lu > lv {
                    continue;
                }
                if !g.is_directed() && lu == lv {
                    continue; // self-loop; builder would drop it anyway
                }
                let (a, b) = if g.is_directed() || lu <= lv {
                    (lu, lv)
                } else {
                    (lv, lu)
                };
                edge_keys.push((a, b, e));
            }
        }
        // The builder sorts and assigns edge ids in (u, v) order, so sort
        // the key list the same way to align local edge ids with globals.
        edge_keys.sort_unstable_by_key(|&(u, v, _)| (u, v));
        edge_keys.dedup_by_key(|&mut (u, v, _)| (u, v));
        let mut b = builder;
        let mut edge_to_global = Vec::with_capacity(edge_keys.len());
        for &(u, v, e) in &edge_keys {
            b.add_weighted_edge(u, v, g.edge_weight(e));
            edge_to_global.push(e);
        }
        InducedSubgraph {
            graph: b.build(),
            to_global,
            edge_to_global,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::view::FilteredGraph;

    #[test]
    fn extracts_triangle_from_larger_graph() {
        // Two triangles joined by a bridge: {0,1,2} - {3,4,5}.
        let g = from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let sub = InducedSubgraph::extract(&g, &[3, 4, 5]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
        assert_eq!(sub.to_global, vec![3, 4, 5]);
        // Local edges map back to global edges among {3,4,5}.
        for (le, &ge) in sub.edge_to_global.iter().enumerate() {
            let (lu, lv) = sub.graph.edge_endpoints(le as EdgeId);
            let (gu, gv) = g.edge_endpoints(ge);
            let mapped = (sub.to_global[lu as usize], sub.to_global[lv as usize]);
            assert_eq!((mapped.0.min(mapped.1), mapped.0.max(mapped.1)), (gu, gv));
        }
    }

    #[test]
    fn respects_filtered_deletions() {
        let g = from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut f = FilteredGraph::new(&g);
        // Delete edge (0,1) — edge id 0.
        f.delete_edge(0);
        let sub = InducedSubgraph::extract(&f, &[0, 1, 2]);
        assert_eq!(sub.graph.num_edges(), 2);
    }

    #[test]
    fn duplicate_vertices_ignored() {
        let g = from_edges(3, &[(0, 1)]);
        let sub = InducedSubgraph::extract(&g, &[0, 0, 1, 1]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn empty_subset() {
        let g = from_edges(3, &[(0, 1)]);
        let sub = InducedSubgraph::extract(&g, &[]);
        assert_eq!(sub.graph.num_vertices(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn weights_carried_over() {
        use crate::GraphBuilder;
        let g = GraphBuilder::undirected(3)
            .add_weighted_edges([(0, 1, 5), (1, 2, 7)])
            .build();
        let sub = InducedSubgraph::extract(&g, &[1, 2]);
        assert_eq!(sub.graph.num_edges(), 1);
        assert_eq!(sub.graph.edge_weight(0), 7);
    }
}
