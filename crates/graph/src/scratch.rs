//! Epoch-stamped traversal workspaces: reusable scratch state for
//! multi-source graph kernels.
//!
//! SNAP's multi-source kernels (Brandes betweenness, closeness, sampled
//! path statistics, st-connectivity) run one traversal per source. A
//! naive implementation pays an allocator round-trip and an `O(n)` clear
//! per source — on a k-source sweep the reset cost is `O(k·n)` while the
//! useful work is proportional to the *touched* subgraph. GBBS and
//! NetworKit both attribute large constant-factor wins to flat, reused
//! scratch structures; this module is that layer.
//!
//! # Epoch stamping
//!
//! A [`TraversalWorkspace`] holds one slot per vertex. Each slot's
//! validity is tracked by an epoch stamp packed into the high 32 bits of
//! the `dist` word ([`TraversalWorkspace::dist`]): a slot is live iff its
//! stamp equals the workspace's current epoch. "Clearing" the workspace
//! for the next traversal is therefore a single epoch increment
//! ([`TraversalWorkspace::begin`]); stale slots are detected on read and
//! (re)initialized on first touch. A full `O(n)` clear happens only when
//!
//! * the epoch counter wraps (once per `u32::MAX - 1` traversals), or
//! * the workspace grows to fit a larger vertex set (only the new tail
//!   is zeroed).
//!
//! The auxiliary slots (`parent`, the σ/δ/cursor fields of a
//! [`BrandesSlot`]) carry **no stamps of their own**: they are only
//! meaningful for vertices stamped in the current epoch, and every
//! kernel initializes them at first touch. They are never cleared at
//! all.
//!
//! # The flat predecessor buffer
//!
//! Brandes' dependency accumulation needs, per vertex, the list of
//! shortest-path predecessor arcs. A `Vec<Vec<_>>` costs one heap
//! allocation per vertex plus a pointer chase per read. Because a vertex
//! can have at most `degree(v)` predecessors, one flat buffer sized by
//! the graph's arc count with CSR-style offsets ([`bind_preds`]) holds
//! every list with zero per-source allocation; the per-vertex end
//! cursors live in the packed [`BrandesSlot`]s and are epoch-reset like
//! every other slot.
//!
//! [`bind_preds`]: TraversalWorkspace::bind_preds
//!
//! # Contract
//!
//! Public kernel results must never depend on workspace history: a
//! kernel given a freshly allocated workspace and one reused across 50
//! unrelated graphs must produce bit-identical output. The regression
//! suite (`tests/workspace_reuse.rs`) enforces this, including across
//! filtered views whose vertex count differs from the previous binding.

use crate::traits::Graph;
use crate::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Mask selecting the distance half of a packed `dist` word.
pub const DIST_MASK: u64 = 0xFFFF_FFFF;

/// Whether a packed `dist` word is stamped with epoch tag `tag` (i.e. the
/// slot is live in the current traversal).
#[inline(always)]
pub fn stamped(word: u64, tag: u64) -> bool {
    word & !DIST_MASK == tag
}

/// Distance half of a packed `dist` word (only meaningful when
/// [`stamped`]).
#[inline(always)]
pub fn dist_of(word: u64) -> u32 {
    word as u32
}

/// Per-vertex Brandes bookkeeping — σ/δ accumulators and the
/// predecessor cursors — packed into one 24-byte record. A
/// shortest-path arc's handling (σ update, arc append, cursor bump, and
/// the dependency phase's σ read / δ accumulate) is random-access per
/// neighbor; parallel arrays cost up to three cache-line fetches per
/// arc where one packed slot costs one. The traversal's stamp word
/// deliberately stays *out* of the slot: every scanned arc probes it —
/// most arcs only it — and keeping those probes in the dense
/// [`TraversalWorkspace::dist`] array (8 B/vertex instead of a 24 B
/// stride) is worth far more than saving a line on the shortest-path
/// subset. Slots carry no stamp of their own: every field is written at
/// the owning vertex's first touch in the current traversal.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BrandesSlot {
    /// Shortest-path count σ from the current source.
    pub sigma: f64,
    /// Accumulated dependency δ.
    pub delta: f64,
    /// CSR start of this vertex's slots in the flat predecessor buffer
    /// (written by [`TraversalWorkspace::bind_preds`], stable across the
    /// kernel call).
    pub pred_off: u32,
    /// One past the last predecessor arc appended this traversal; valid
    /// only for vertices stamped in the current epoch.
    pub pred_end: u32,
}

/// One predecessor arc `(pred vertex, edge id)` in the flat buffer.
#[derive(Clone, Copy, Debug, Default)]
pub struct PredArc {
    /// Predecessor vertex.
    pub v: VertexId,
    /// Id of the arc from `v` to the slot's vertex.
    pub e: u32,
}

/// Lifetime counters for a workspace (or a pool of them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Traversals that reused existing allocations (every
    /// [`TraversalWorkspace::begin`] that did not have to allocate).
    pub reuses: u64,
    /// Traversals cleared by a pure epoch bump (no memory written).
    pub epoch_resets: u64,
    /// Times slot memory was actually written wholesale: initial
    /// allocation, growth to a larger vertex set, or an epoch wrap.
    pub full_clears: u64,
}

impl WorkspaceStats {
    fn absorb(&mut self, other: WorkspaceStats) {
        self.reuses += other.reuses;
        self.epoch_resets += other.epoch_resets;
        self.full_clears += other.full_clears;
    }

    fn is_zero(&self) -> bool {
        *self == WorkspaceStats::default()
    }
}

/// Reusable epoch-stamped scratch state for one traversal at a time.
///
/// The slot arrays are public so kernels can run their hot loops on bare
/// slices; the epoch counter itself is private and only advances through
/// [`begin`](Self::begin). Invariants callers must uphold:
///
/// * call [`begin`](Self::begin) before each traversal and only read
///   slots whose `dist` word is [`stamped`] with the returned tag;
/// * initialize `parent` (or a [`BrandesSlot`]'s σ/δ/`pred_end` fields)
///   for a vertex when stamping its `dist` word — stale contents are
///   garbage, not zeroes;
/// * call [`bind_preds`](Self::bind_preds) (per kernel call, after any
///   graph change) before using the predecessor buffer.
#[derive(Debug, Default)]
pub struct TraversalWorkspace {
    /// Current epoch; `0` means "never begun" so fresh zeroed slots are
    /// always stale.
    epoch: u32,
    /// Allocated vertex capacity of the slot arrays.
    cap: usize,
    /// Per-vertex packed `(epoch_stamp << 32) | distance` words.
    pub dist: Vec<u64>,
    /// Per-vertex parent (BFS trees) or side marker (st-connectivity).
    /// Allocated lazily; valid only for stamped vertices.
    pub parent: Vec<VertexId>,
    /// Per-vertex packed Brandes slots ([`BrandesSlot`]). Allocated
    /// lazily by [`bind_preds`](Self::bind_preds); valid only for
    /// vertices whose `dist` word is stamped in the current epoch.
    pub bslot: Vec<BrandesSlot>,
    /// Vertices stamped by the current traversal, in discovery order
    /// (the Brandes "stack"). Level-synchronous kernels also use it as
    /// their FIFO queue: a head index chases the push end.
    pub order: Vec<VertexId>,
    /// Flat predecessor arc buffer, sized by the bound graph's arcs;
    /// vertex `v`'s slots are `pred[off .. end]` for its
    /// [`BrandesSlot`] cursors `off`/`end`.
    pub pred: Vec<PredArc>,
    /// Counters not yet absorbed by a pool / flushed to snap-obs.
    pending: WorkspaceStats,
    /// Lifetime totals (for tests and direct owners).
    totals: WorkspaceStats,
}

impl TraversalWorkspace {
    /// An empty workspace; slots are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a traversal over `n` vertices: grows the slot arrays if
    /// needed, advances the epoch, clears the discovery order, and
    /// returns the epoch tag to stamp `dist` words with.
    #[inline]
    pub fn begin(&mut self, n: usize) -> u64 {
        let mut allocated = false;
        if n > self.cap {
            self.dist.resize(n, 0);
            if !self.parent.is_empty() {
                self.parent.resize(n, 0);
            }
            if !self.bslot.is_empty() && self.bslot.len() < n {
                self.bslot.resize(n, BrandesSlot::default());
            }
            self.cap = n;
            self.pending.full_clears += 1;
            allocated = true;
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: the one place reuse still pays an O(n) clear.
            // Only the stamp words are reset — a wrap can land mid
            // kernel call, between sources, and the `pred_off` fields
            // written by the call's `bind_preds` must survive it.
            self.dist.fill(0);
            self.epoch = 1;
            self.pending.full_clears += 1;
        } else {
            self.epoch += 1;
            if !allocated {
                self.pending.reuses += 1;
                self.pending.epoch_resets += 1;
            }
        }
        self.order.clear();
        (self.epoch as u64) << 32
    }

    /// The current epoch tag (as returned by the last [`begin`]).
    ///
    /// [`begin`]: Self::begin
    #[inline]
    pub fn tag(&self) -> u64 {
        (self.epoch as u64) << 32
    }

    /// Iterate the current traversal's discovery order as maximal
    /// `(depth, order-index range)` runs. A level-synchronous traversal
    /// stamps `order` in non-decreasing depth order, so run boundaries
    /// are found by binary search: `O(D log n)` dist reads for `D`
    /// levels instead of one read per touched vertex. Aggregations that
    /// only need counts per depth (closeness sums, distance histograms)
    /// never touch the dist words at all beyond the boundaries.
    ///
    /// Only meaningful after a level-ordered traversal (BFS kernels);
    /// do not use over an order filled by priority-driven searches.
    pub fn depth_runs(&self) -> impl Iterator<Item = (u32, std::ops::Range<usize>)> + '_ {
        let mut lo = 0usize;
        std::iter::from_fn(move || {
            if lo >= self.order.len() {
                return None;
            }
            let d = dist_of(self.dist[self.order[lo] as usize]);
            let len = self.order[lo..].partition_point(|&v| dist_of(self.dist[v as usize]) <= d);
            let run = lo..lo + len;
            lo += len;
            Some((d, run))
        })
    }

    /// Ensure the `parent` slots exist (BFS / st-connectivity kernels).
    #[inline]
    pub fn ensure_parent(&mut self) {
        if self.parent.len() < self.cap {
            self.parent.resize(self.cap, 0);
        }
    }

    /// Size the packed Brandes slots for `g`, write each vertex's CSR
    /// predecessor offset into its slot, and size the flat buffer to the
    /// graph's arc count. `O(n)` — call once per kernel call (the cost
    /// amortizes over that call's sources), and again whenever the
    /// kernel moves to a different graph or view.
    pub fn bind_preds<G: Graph>(&mut self, g: &G) {
        let n = g.num_vertices();
        if self.bslot.len() < n {
            self.bslot.resize(n, BrandesSlot::default());
        }
        let mut off = 0u32;
        for v in 0..n {
            self.bslot[v].pred_off = off;
            off += g.degree(v as VertexId) as u32;
        }
        if self.pred.len() < off as usize {
            self.pred.resize(off as usize, PredArc::default());
        }
    }

    /// Split borrows of every slot array for a kernel hot loop. The
    /// private epoch bookkeeping stays untouched behind the borrow, so
    /// kernels can destructure [`Slots`] into disjoint `&mut` slices.
    /// Slices span the allocated capacity; index only `0..n` of the
    /// graph passed to [`begin`](Self::begin), and only use slot
    /// families whose `ensure_*` / [`bind_preds`](Self::bind_preds)
    /// was called.
    #[inline]
    pub fn slots(&mut self) -> Slots<'_> {
        Slots {
            dist: &mut self.dist,
            parent: &mut self.parent,
            bslot: &mut self.bslot,
            order: &mut self.order,
            pred: &mut self.pred,
        }
    }

    /// Bytes currently held by the slot arrays.
    pub fn bytes(&self) -> usize {
        self.dist.capacity() * 8
            + self.parent.capacity() * 4
            + self.bslot.capacity() * std::mem::size_of::<BrandesSlot>()
            + self.order.capacity() * 4
            + self.pred.capacity() * 8
    }

    /// Lifetime counters for this workspace.
    pub fn stats(&self) -> WorkspaceStats {
        let mut s = self.totals;
        s.absorb(self.pending);
        s
    }

    /// Move the un-flushed counters out (they land in `totals` so
    /// [`stats`](Self::stats) stays cumulative).
    fn take_pending(&mut self) -> WorkspaceStats {
        let p = std::mem::take(&mut self.pending);
        self.totals.absorb(p);
        p
    }

    /// Emit pending counters to snap-obs on the *current thread* (they
    /// attach to the active span). Call from the thread that owns the
    /// kernel's span; worker threads should return workspaces to a
    /// [`WorkspacePool`] instead, and the kernel flushes the pool.
    pub fn flush_obs(&mut self) {
        let p = self.take_pending();
        emit(p, self.bytes() as f64);
    }
}

impl Drop for TraversalWorkspace {
    fn drop(&mut self) {
        self.flush_obs();
    }
}

fn emit(p: WorkspaceStats, bytes: f64) {
    if !snap_obs::is_enabled() {
        return;
    }
    if !p.is_zero() {
        snap_obs::add("workspace_reuses", p.reuses);
        snap_obs::add("epoch_resets", p.epoch_resets);
        snap_obs::add("full_clears", p.full_clears);
    }
    if bytes > 0.0 {
        // Peak semantics: several workspaces (or several flushes of the
        // same coalesced span) may report concurrently, and the gauge
        // should keep the largest footprint seen, not the last one.
        snap_obs::gauge_max("workspace_bytes", bytes);
    }
}

/// Disjoint mutable borrows of a workspace's slot arrays (see
/// [`TraversalWorkspace::slots`]).
#[derive(Debug)]
pub struct Slots<'w> {
    /// Packed `(stamp << 32) | distance` words.
    pub dist: &'w mut [u64],
    /// BFS parents / st-connectivity side markers.
    pub parent: &'w mut [VertexId],
    /// Packed per-vertex Brandes slots (own `dist` word, σ/δ,
    /// predecessor cursors).
    pub bslot: &'w mut [BrandesSlot],
    /// Discovery-order list of stamped vertices (doubles as the FIFO
    /// queue in level-synchronous kernels).
    pub order: &'w mut Vec<VertexId>,
    /// Flat predecessor arc buffer.
    pub pred: &'w mut [PredArc],
}

/// A checkout pool of [`TraversalWorkspace`]s for source-parallel
/// kernels: each rayon chunk acquires one workspace for its whole run,
/// so a k-source sweep on `p` workers allocates at most `p` workspaces
/// regardless of `k` — and a pool held across kernel calls (pBD rounds,
/// the `Network` session) allocates none at all after warm-up.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<TraversalWorkspace>>,
    // Counters absorbed from returned workspaces. Worker threads have no
    // snap-obs context, so the stats ride back on the pool and the
    // kernel's owning thread emits them from inside its span.
    reuses: AtomicU64,
    epoch_resets: AtomicU64,
    full_clears: AtomicU64,
    // Same totals, monotonic (never drained by flush) — for stats().
    total: [AtomicU64; 3],
    // Concurrency high-water mark: workspaces checked out right now, and
    // the peak since the last flush. The peak is the pool's actual memory
    // footprint driver (each outstanding checkout owns its slot arrays),
    // so it surfaces as the `workspace_pool_peak` gauge.
    outstanding: AtomicU64,
    peak: AtomicU64,
    // Traversals each returned checkout performed, drained into the
    // `checkout_traversals` histogram at flush: a skewed distribution
    // means chunked work is unbalanced across workers.
    checkout_begins: Mutex<Vec<u64>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check a workspace out (reusing a returned one when available).
    /// The guard returns it — and its counters — on drop.
    pub fn acquire(&self) -> PooledWorkspace<'_> {
        let ws = self
            .free
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        let now = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    fn absorb(&self, p: WorkspaceStats) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        if let Ok(mut begins) = self.checkout_begins.lock() {
            begins.push(p.epoch_resets + p.full_clears);
        }
        self.reuses.fetch_add(p.reuses, Ordering::Relaxed);
        self.epoch_resets
            .fetch_add(p.epoch_resets, Ordering::Relaxed);
        self.full_clears.fetch_add(p.full_clears, Ordering::Relaxed);
        self.total[0].fetch_add(p.reuses, Ordering::Relaxed);
        self.total[1].fetch_add(p.epoch_resets, Ordering::Relaxed);
        self.total[2].fetch_add(p.full_clears, Ordering::Relaxed);
    }

    /// Counters absorbed over the pool's lifetime (checked-out
    /// workspaces contribute when returned).
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            reuses: self.total[0].load(Ordering::Relaxed),
            epoch_resets: self.total[1].load(Ordering::Relaxed),
            full_clears: self.total[2].load(Ordering::Relaxed),
        }
    }

    /// Bytes held by the workspaces currently checked in.
    pub fn bytes_held(&self) -> usize {
        self.free
            .lock()
            .expect("workspace pool poisoned")
            .iter()
            .map(|w| w.bytes())
            .sum()
    }

    /// Emit the counters accumulated since the last flush to snap-obs on
    /// the current thread (no-op when nothing accumulated). Kernels call
    /// this after their parallel section, inside their span.
    pub fn flush_obs(&self) {
        let p = WorkspaceStats {
            reuses: self.reuses.swap(0, Ordering::Relaxed),
            epoch_resets: self.epoch_resets.swap(0, Ordering::Relaxed),
            full_clears: self.full_clears.swap(0, Ordering::Relaxed),
        };
        emit(p, self.bytes_held() as f64);
        let peak = self.peak.swap(0, Ordering::Relaxed);
        // Workspaces still checked out seed the next flush window.
        self.peak
            .fetch_max(self.outstanding.load(Ordering::Relaxed), Ordering::Relaxed);
        if !snap_obs::is_enabled() {
            // Reset the window anyway so a later enabled run does not
            // inherit stale checkout stats.
            if let Ok(mut begins) = self.checkout_begins.lock() {
                begins.clear();
            }
            return;
        }
        if peak > 0 {
            // fetch_max semantics: concurrent flushes (or repeated
            // flushes under a coalesced span) must never regress the
            // recorded concurrency high-water mark.
            snap_obs::gauge_max("workspace_pool_peak", peak as f64);
        }
        let begins = match self.checkout_begins.lock() {
            Ok(mut b) => std::mem::take(&mut *b),
            Err(_) => Vec::new(),
        };
        if !begins.is_empty() {
            let hist = snap_obs::hist("checkout_traversals");
            for b in begins {
                hist.record(b);
            }
        }
    }
}

/// A checkout pool of arbitrary per-thread scratch values — the
/// [`WorkspacePool`] shape generalized for scratch that is not a
/// traversal workspace (e.g. the decode buffers of the compressed CSR
/// backend). Each parallel chunk acquires one value for its whole run;
/// returned values keep their grown allocations, so a pool held across
/// sweeps allocates nothing after warm-up.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Check a value out (reusing a returned one when available). The
    /// guard returns it on drop.
    pub fn acquire(&self) -> PooledScratch<'_, T> {
        let item = self
            .free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledScratch {
            pool: self,
            item: Some(item),
        }
    }

    /// How many values are currently checked in.
    pub fn available(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }
}

/// Checkout guard for a pooled scratch value (see
/// [`ScratchPool::acquire`]).
#[derive(Debug)]
pub struct PooledScratch<'p, T> {
    pool: &'p ScratchPool<T>,
    item: Option<T>,
}

impl<T> std::ops::Deref for PooledScratch<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.item.as_ref().expect("scratch checked out")
    }
}

impl<T> std::ops::DerefMut for PooledScratch<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("scratch checked out")
    }
}

impl<T> Drop for PooledScratch<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(item);
            }
        }
    }
}

/// Checkout guard for a pooled workspace (see [`WorkspacePool::acquire`]).
#[derive(Debug)]
pub struct PooledWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<TraversalWorkspace>,
}

impl std::ops::Deref for PooledWorkspace<'_> {
    type Target = TraversalWorkspace;

    fn deref(&self) -> &TraversalWorkspace {
        self.ws.as_ref().expect("workspace checked out")
    }
}

impl std::ops::DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut TraversalWorkspace {
        self.ws.as_mut().expect("workspace checked out")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(mut ws) = self.ws.take() {
            self.pool.absorb(ws.take_pending());
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(ws);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn epoch_bump_invalidates_slots() {
        let mut ws = TraversalWorkspace::new();
        let tag = ws.begin(4);
        ws.dist[2] = tag | 7;
        assert!(stamped(ws.dist[2], tag));
        assert_eq!(dist_of(ws.dist[2]), 7);
        assert!(!stamped(ws.dist[1], tag), "untouched slots are stale");
        let tag2 = ws.begin(4);
        assert_ne!(tag, tag2);
        assert!(!stamped(ws.dist[2], tag2), "old epoch's writes are stale");
    }

    #[test]
    fn growth_keeps_old_slots_stale() {
        let mut ws = TraversalWorkspace::new();
        let t1 = ws.begin(3);
        ws.dist[1] = t1 | 5;
        let t2 = ws.begin(10);
        for v in 0..10 {
            assert!(!stamped(ws.dist[v], t2), "v{v} must be stale after grow");
        }
        // Shrinking the active range needs no work at all.
        let t3 = ws.begin(2);
        assert!(!stamped(ws.dist[1], t3));
    }

    #[test]
    fn stats_count_reuse_and_allocation() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(8);
        for _ in 0..5 {
            ws.begin(8);
        }
        let s = ws.stats();
        assert_eq!(s.reuses, 5);
        assert_eq!(s.epoch_resets, 5);
        assert_eq!(s.full_clears, 1);
        ws.begin(16); // growth: another full clear, not a reuse
        let s = ws.stats();
        assert_eq!(s.full_clears, 2);
        assert_eq!(s.reuses, 5);
    }

    #[test]
    fn pred_binding_matches_degrees() {
        let g = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let mut ws = TraversalWorkspace::new();
        ws.begin(4);
        ws.bind_preds(&g);
        let offs: Vec<u32> = ws.bslot.iter().map(|s| s.pred_off).collect();
        assert_eq!(offs, vec![0, 1, 4, 5]);
        assert!(ws.pred.len() >= 6);
        assert_eq!(ws.bslot.len(), 4);
    }

    #[test]
    fn pool_round_trips_and_counts() {
        let pool = WorkspacePool::new();
        {
            let mut ws = pool.acquire();
            ws.begin(4);
            ws.begin(4);
        }
        {
            let mut ws = pool.acquire();
            ws.begin(4); // reused allocation from the pooled workspace
        }
        let s = pool.stats();
        assert_eq!(s.full_clears, 1);
        assert_eq!(s.reuses, 2);
        assert!(pool.bytes_held() > 0);
    }

    #[test]
    fn pool_tracks_checkout_high_water_mark() {
        let pool = WorkspacePool::new();
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            assert_eq!(pool.outstanding.load(Ordering::Relaxed), 2);
            assert_eq!(pool.peak.load(Ordering::Relaxed), 2);
        }
        assert_eq!(pool.outstanding.load(Ordering::Relaxed), 0);
        // Peak survives the returns until a flush drains the window.
        assert_eq!(pool.peak.load(Ordering::Relaxed), 2);
        pool.flush_obs();
        assert_eq!(pool.peak.load(Ordering::Relaxed), 0);
        let _c = pool.acquire();
        assert_eq!(pool.peak.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_records_traversals_per_checkout() {
        let pool = WorkspacePool::new();
        {
            let mut ws = pool.acquire();
            ws.begin(4);
            ws.begin(4);
            ws.begin(4);
        }
        {
            let mut ws = pool.acquire();
            ws.begin(4);
        }
        let begins = pool.checkout_begins.lock().unwrap();
        assert_eq!(*begins, vec![3, 1]);
    }

    #[test]
    fn order_resets_per_begin() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(4);
        ws.order.push(3);
        ws.begin(4);
        assert!(ws.order.is_empty());
    }

    #[test]
    fn depth_runs_partition_the_order() {
        // Star + tail: depths 0 (source), 1 x3, 2 x1.
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        let mut ws = TraversalWorkspace::new();
        let tag = ws.begin(5);
        // Simulate a level-ordered traversal result.
        let depths = [0u64, 1, 1, 1, 2];
        for (v, &d) in depths.iter().enumerate() {
            ws.dist[v] = tag | d;
        }
        ws.order.extend([0u32, 1, 2, 3, 4]);
        let runs: Vec<_> = ws.depth_runs().collect();
        assert_eq!(runs, vec![(0, 0..1), (1, 1..4), (2, 4..5)]);
        let total: usize = runs.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, ws.order.len());
        let _ = g;
    }
}
