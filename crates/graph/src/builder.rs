//! Edge-list accumulator that produces a validated [`CsrGraph`].

use crate::csr::CsrGraph;
use crate::{EdgeId, VertexId, Weight};

/// Accumulates edges and builds a [`CsrGraph`].
///
/// Duplicate edges are merged (weights summed), self-loops are dropped by
/// default (none of the paper's algorithms use them; modularity in
/// particular assumes simple graphs), and undirected edges are
/// canonicalized to `u <= v` before being expanded into two arcs.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    keep_self_loops: bool,
    edges: Vec<(VertexId, VertexId, Weight)>,
    weighted: bool,
}

impl GraphBuilder {
    /// Builder for an undirected graph on `n` vertices.
    pub fn undirected(n: usize) -> Self {
        Self::new(n, false)
    }

    /// Builder for a directed graph on `n` vertices.
    pub fn directed(n: usize) -> Self {
        Self::new(n, true)
    }

    fn new(n: usize, directed: bool) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids must fit in u32");
        GraphBuilder {
            n,
            directed,
            keep_self_loops: false,
            edges: Vec::new(),
            weighted: false,
        }
    }

    /// Keep self-loops instead of silently dropping them.
    pub fn with_self_loops(mut self) -> Self {
        self.keep_self_loops = true;
        self
    }

    /// Pre-allocate for `m` edges.
    pub fn with_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Number of (not yet deduplicated) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an unweighted edge.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.add_weighted_edge(u, v, 1)
    }

    /// Add a weighted edge. Duplicate edges accumulate weight.
    pub fn add_weighted_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        if w != 1 {
            self.weighted = true;
        }
        let (a, b) = if self.directed || u <= v {
            (u, v)
        } else {
            (v, u)
        };
        self.edges.push((a, b, w));
        self
    }

    /// Add a batch of unweighted edges.
    pub fn add_edges<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
        self
    }

    /// Add a batch of weighted edges.
    pub fn add_weighted_edges<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId, Weight)>,
    {
        for (u, v, w) in edges {
            self.add_weighted_edge(u, v, w);
        }
        self
    }

    /// Build the CSR graph: sort, deduplicate, expand arcs, prefix-sum.
    pub fn build(mut self) -> CsrGraph {
        let n = self.n;

        // Canonical order so duplicates become adjacent.
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));

        // Deduplicate, merging weights; drop self-loops unless kept. Any
        // merge makes the graph weighted even if every input weight was 1
        // (parallel unit edges collapse to a weight-2 edge — the coarse
        // graphs of the multilevel partitioner rely on this).
        let mut uniq: Vec<(VertexId, VertexId, Weight)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            if u == v && !self.keep_self_loops {
                continue;
            }
            match uniq.last_mut() {
                Some(last) if last.0 == u && last.1 == v => {
                    last.2 = last.2.saturating_add(w);
                    self.weighted = true;
                }
                _ => uniq.push((u, v, w)),
            }
        }
        assert!(uniq.len() <= u32::MAX as usize, "edge ids must fit in u32");

        // Count arcs per vertex.
        let mut counts = vec![0usize; n + 1];
        for &(u, v, _) in &uniq {
            counts[u as usize + 1] += 1;
            if !self.directed && u != v {
                counts[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let num_arcs = offsets[n];

        // Fill arcs.
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; num_arcs];
        let mut arc_edge_ids = vec![0 as EdgeId; num_arcs];
        let mut endpoints = Vec::with_capacity(uniq.len());
        let mut weights = Vec::new();
        if self.weighted {
            weights.reserve(uniq.len());
        }
        for (eid, &(u, v, w)) in uniq.iter().enumerate() {
            let e = eid as EdgeId;
            endpoints.push((u, v));
            if self.weighted {
                weights.push(w);
            }
            let cu = &mut cursor[u as usize];
            targets[*cu] = v;
            arc_edge_ids[*cu] = e;
            *cu += 1;
            if !self.directed && u != v {
                let cv = &mut cursor[v as usize];
                targets[*cv] = u;
                arc_edge_ids[*cv] = e;
                *cv += 1;
            }
        }

        let g = CsrGraph {
            offsets,
            targets,
            arc_edge_ids,
            endpoints,
            weights,
            directed: self.directed,
        };
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }
}

/// Convenience: build an undirected graph straight from an edge list.
pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> CsrGraph {
    GraphBuilder::undirected(n)
        .add_edges(edges.iter().copied())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Graph, WeightedGraph};

    #[test]
    fn dedup_merges_weights() {
        let g = GraphBuilder::undirected(2)
            .add_weighted_edges([(0, 1, 2), (1, 0, 3)])
            .build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0), 5);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::undirected(2)
            .add_edges([(0, 0), (0, 1)])
            .build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_kept_on_request() {
        let g = GraphBuilder::undirected(2)
            .with_self_loops()
            .add_edges([(0, 0), (0, 1)])
            .build();
        assert_eq!(g.num_edges(), 2);
        // An undirected self-loop contributes one arc.
        assert_eq!(g.num_arcs(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn directed_preserves_orientation() {
        let g = GraphBuilder::directed(3)
            .add_edges([(2, 0), (0, 1)])
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.neighbor_slice(2), &[0]);
        assert_eq!(g.neighbor_slice(0), &[1]);
        assert_eq!(g.neighbor_slice(1), &[] as &[VertexId]);
    }

    #[test]
    fn adjacency_sorted_by_construction() {
        let g = from_edges(5, &[(0, 4), (0, 1), (0, 3), (0, 2)]);
        assert_eq!(g.neighbor_slice(0), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::undirected(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = from_edges(10, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }
}
