//! Representation-agnostic graph access.
//!
//! Kernels are written against [`Graph`] so that they run unchanged on the
//! static CSR representation, on filtered views with deleted edges, and on
//! induced subgraphs. The trait exposes arc-level iteration with edge ids
//! because several SNAP algorithms (edge betweenness, divisive clustering)
//! are edge-centric.

use crate::{EdgeId, VertexId, Weight};

/// Read access to a (possibly directed) graph.
///
/// Terminology follows the paper: a graph has `n` **vertices** and `m`
/// **edges**; an undirected edge is stored as two **arcs**. `num_edges`
/// counts logical edges (each undirected edge once), `num_arcs` counts
/// stored arcs.
pub trait Graph: Sync {
    /// Number of vertices `n`. Vertex ids are `0..n`.
    fn num_vertices(&self) -> usize;

    /// Number of logical edges `m` (undirected edges counted once).
    fn num_edges(&self) -> usize;

    /// Number of stored arcs (`2m` for undirected graphs, `m` for digraphs).
    fn num_arcs(&self) -> usize;

    /// Whether edges are directed.
    fn is_directed(&self) -> bool;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Iterate over the out-neighbors of `v`.
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_;

    /// Iterate over `(neighbor, edge_id)` pairs for the out-arcs of `v`.
    /// Both arcs of an undirected edge report the same `EdgeId`.
    fn neighbors_with_eid(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_;

    /// Endpoints `(u, v)` of edge `e` as stored (for undirected graphs,
    /// `u <= v` by construction in the builder).
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId);

    /// Exclusive upper bound on edge ids. Equals `num_edges()` for plain
    /// graphs, but for filtered views it spans the *base* id space, which
    /// is what per-edge accumulator arrays must be sized to.
    fn edge_id_bound(&self) -> usize {
        self.num_edges()
    }

    /// Iterate over all vertex ids.
    fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterate over the ids of *live* edges. For plain graphs this is the
    /// contiguous range `0..num_edges()`; filtered views yield the sparse
    /// subset of `0..edge_id_bound()` that is still live. Any "for every
    /// edge" sweep outside the representation layer must use this — a flat
    /// `0..num_edges()` loop silently reads the wrong edges on a view.
    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        0..self.num_edges() as EdgeId
    }

    /// Sum of degrees over all vertices (equals `num_arcs` when every arc is
    /// live). Provided for sanity checks and modularity denominators.
    fn total_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).sum()
    }
}

/// Graphs that carry positive integer edge weights.
pub trait WeightedGraph: Graph {
    /// Weight of edge `e` (`1` for unweighted graphs).
    fn edge_weight(&self, e: EdgeId) -> Weight;

    /// Iterate over `(neighbor, edge_id, weight)` triples for `v`'s out-arcs.
    fn neighbors_weighted(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, EdgeId, Weight)> + '_ {
        self.neighbors_with_eid(v)
            .map(move |(u, e)| (u, e, self.edge_weight(e)))
    }
}
