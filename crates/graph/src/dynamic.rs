//! Dynamic graph with degree-adaptive adjacency storage.
//!
//! The paper's auxiliary representation: low-degree vertices keep their
//! adjacencies in simple unsorted resizable arrays (cheap insertion, linear
//! deletion over a short list), while the few very high-degree vertices of
//! a small-world network switch to treaps, keeping updates and membership
//! queries logarithmic. The crossover degree is configurable.

use crate::csr::CsrGraph;
use crate::traits::Graph;
use crate::treap::Treap;
use crate::{GraphBuilder, VertexId};

/// Default degree at which an adjacency list is promoted to a treap.
/// Small-world degree distributions are heavily skewed, so nearly all
/// vertices stay below this and pay zero tree overhead.
pub const DEFAULT_TREAP_THRESHOLD: usize = 128;

#[derive(Clone, Debug)]
enum Adjacency {
    /// Unsorted resizable array; the common case for low-degree vertices.
    Array(Vec<VertexId>),
    /// Randomized search tree for high-degree vertices.
    Tree(Treap<VertexId>),
}

impl Adjacency {
    fn len(&self) -> usize {
        match self {
            Adjacency::Array(v) => v.len(),
            Adjacency::Tree(t) => t.len(),
        }
    }

    fn contains(&self, u: VertexId) -> bool {
        match self {
            Adjacency::Array(v) => v.contains(&u),
            Adjacency::Tree(t) => t.contains(&u),
        }
    }
}

/// Mutable graph supporting edge insertion and deletion.
///
/// Undirected only (the dynamic algorithms in the paper operate on
/// undirected interaction graphs); each edge is mirrored in both endpoint
/// adjacencies.
#[derive(Clone, Debug)]
pub struct DynGraph {
    adj: Vec<Adjacency>,
    num_edges: usize,
    threshold: usize,
}

impl DynGraph {
    /// Empty dynamic graph on `n` vertices with the default treap threshold.
    pub fn new(n: usize) -> Self {
        Self::with_threshold(n, DEFAULT_TREAP_THRESHOLD)
    }

    /// Empty dynamic graph with an explicit array→treap crossover degree.
    /// `threshold == usize::MAX` disables treaps entirely (pure arrays),
    /// `threshold == 0` forces treaps everywhere; both are useful for the
    /// ablation benchmarks.
    pub fn with_threshold(n: usize, threshold: usize) -> Self {
        DynGraph {
            adj: (0..n).map(|_| Adjacency::Array(Vec::new())).collect(),
            num_edges: 0,
            threshold,
        }
    }

    /// Import a static graph into the dynamic representation.
    ///
    /// `DynGraph` models a *simple* graph: self-loops and parallel edges of
    /// the source CSR are stripped. This convenience wrapper discards the
    /// drop count; use [`Self::from_csr_counted`] when the caller must
    /// know whether `num_edges()` can disagree with the source.
    pub fn from_csr(g: &CsrGraph) -> Self {
        Self::from_csr_counted(g).0
    }

    /// Import a static graph, reporting how many source edges were
    /// deliberately stripped (self-loops, and duplicates of an edge already
    /// inserted) because the dynamic representation is a simple graph.
    /// `from_csr(g).num_edges() == g.num_edges() - dropped` always holds.
    pub fn from_csr_counted(g: &CsrGraph) -> (Self, usize) {
        assert!(!g.is_directed(), "DynGraph is undirected");
        let mut d = DynGraph::new(g.num_vertices());
        let mut dropped = 0usize;
        for (_, u, v) in g.edges() {
            if !d.insert_edge(u, v) {
                dropped += 1;
            }
        }
        (d, dropped)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Grow the vertex set so that `v` is a valid vertex id. New vertices
    /// start isolated. No-op when `v` is already in range — safe to call
    /// on every op of a stream whose vertex universe is discovered as it
    /// arrives.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v as usize >= self.adj.len() {
            self.adj
                .resize_with(v as usize + 1, || Adjacency::Array(Vec::new()));
        }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Membership test; `O(deg)` for array vertices, `O(log deg)` for
    /// treap vertices.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].contains(b)
    }

    /// Insert edge `{u, v}`; returns `false` if it already existed or is a
    /// self-loop.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.push_arc(u, v);
        self.push_arc(v, u);
        self.num_edges += 1;
        true
    }

    /// Delete edge `{u, v}`; returns `false` if it was absent.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        self.remove_arc(u, v);
        self.remove_arc(v, u);
        self.num_edges -= 1;
        true
    }

    fn push_arc(&mut self, u: VertexId, v: VertexId) {
        let slot = &mut self.adj[u as usize];
        match slot {
            Adjacency::Array(vec) => {
                vec.push(v);
                if vec.len() > self.threshold {
                    let treap: Treap<VertexId> =
                        Treap::with_seed(0xD1B5_4A32 ^ u as u64).union(vec.drain(..).collect());
                    *slot = Adjacency::Tree(treap);
                }
            }
            Adjacency::Tree(t) => {
                t.insert(v);
            }
        }
    }

    fn remove_arc(&mut self, u: VertexId, v: VertexId) {
        let slot = &mut self.adj[u as usize];
        match slot {
            Adjacency::Array(vec) => {
                if let Some(pos) = vec.iter().position(|&x| x == v) {
                    vec.swap_remove(pos);
                }
            }
            Adjacency::Tree(t) => {
                t.remove(&v);
                // Demote back to an array once the degree collapses well
                // below the promotion point (hysteresis at threshold / 2,
                // so an adjacency oscillating around the crossover does
                // not thrash between representations). `threshold == 0`
                // pins every adjacency to a treap, so it never demotes.
                if t.len() < self.threshold / 2 {
                    *slot = Adjacency::Array(t.iter().copied().collect());
                }
            }
        }
    }

    /// Iterate over the neighbors of `v` (unspecified order for array
    /// vertices, sorted for treap vertices).
    pub fn neighbors(&self, v: VertexId) -> Box<dyn Iterator<Item = VertexId> + '_> {
        match &self.adj[v as usize] {
            Adjacency::Array(vec) => Box::new(vec.iter().copied()),
            Adjacency::Tree(t) => Box::new(t.iter().copied()),
        }
    }

    /// True if `v`'s adjacency has been promoted to a treap.
    pub fn is_treap_backed(&self, v: VertexId) -> bool {
        matches!(self.adj[v as usize], Adjacency::Tree(_))
    }

    /// Freeze into the static CSR representation.
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = GraphBuilder::undirected(self.num_vertices()).with_capacity(self.num_edges);
        for u in 0..self.num_vertices() as VertexId {
            for v in self.neighbors(u) {
                if u <= v {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn insert_and_query() {
        let mut g = DynGraph::new(4);
        assert!(g.insert_edge(0, 1));
        assert!(!g.insert_edge(1, 0));
        assert!(!g.insert_edge(2, 2));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn delete_edge_updates_both_sides() {
        let mut g = DynGraph::new(3);
        g.insert_edge(0, 1);
        g.insert_edge(1, 2);
        assert!(g.delete_edge(0, 1));
        assert!(!g.delete_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn promotes_to_treap_past_threshold() {
        let mut g = DynGraph::with_threshold(100, 8);
        for v in 1..20 {
            g.insert_edge(0, v);
        }
        assert!(g.is_treap_backed(0));
        assert!(!g.is_treap_backed(1));
        assert_eq!(g.degree(0), 19);
        // Treap-backed adjacency still answers queries.
        assert!(g.has_edge(0, 15));
        g.delete_edge(0, 15);
        assert!(!g.has_edge(0, 15));
        assert_eq!(g.degree(0), 18);
    }

    #[test]
    fn treap_neighbors_sorted() {
        let mut g = DynGraph::with_threshold(50, 4);
        for v in [9, 3, 7, 1, 5, 2] {
            g.insert_edge(0, v);
        }
        assert!(g.is_treap_backed(0));
        let ns: Vec<VertexId> = g.neighbors(0).collect();
        assert_eq!(ns, vec![1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn csr_round_trip() {
        let g0 = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
        let dynamic = DynGraph::from_csr(&g0);
        let g1 = dynamic.to_csr();
        assert_eq!(g0.num_edges(), g1.num_edges());
        for v in g0.vertices() {
            let mut a: Vec<_> = g0.neighbors(v).collect();
            let mut b: Vec<_> = g1.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn threshold_zero_forces_treaps() {
        let mut g = DynGraph::with_threshold(4, 0);
        g.insert_edge(0, 1);
        assert!(g.is_treap_backed(0));
        // With threshold 0 there is no array representation to demote to.
        g.delete_edge(0, 1);
        assert!(g.is_treap_backed(0));
    }

    #[test]
    fn demotes_below_half_threshold() {
        let mut g = DynGraph::with_threshold(100, 8);
        for v in 1..=9 {
            g.insert_edge(0, v);
        }
        assert!(g.is_treap_backed(0));
        // Deleting down into the hysteresis band [threshold/2, threshold]
        // keeps the treap; crossing below threshold/2 demotes.
        for v in 1..=5 {
            g.delete_edge(0, v);
        }
        assert!(g.is_treap_backed(0), "degree 4 is still in the band");
        g.delete_edge(0, 6);
        assert!(!g.is_treap_backed(0), "degree 3 < 8/2 must demote");
        // The demoted adjacency still answers queries and can re-promote.
        assert!(g.has_edge(0, 7) && g.has_edge(0, 8) && g.has_edge(0, 9));
        assert_eq!(g.degree(0), 3);
        for v in 10..=17 {
            g.insert_edge(0, v);
        }
        assert!(g.is_treap_backed(0), "re-promotes past the threshold");
        assert_eq!(g.degree(0), 11);
    }

    #[test]
    fn insert_delete_churn_across_crossover() {
        // Drive one hub repeatedly across the promotion/demotion boundary
        // and check membership against a model set the whole way.
        let mut g = DynGraph::with_threshold(64, 8);
        let mut model = std::collections::HashSet::new();
        for round in 0..6 {
            for v in 1..=12u32 {
                assert_eq!(g.insert_edge(0, v), model.insert(v), "round {round}");
            }
            assert!(g.is_treap_backed(0));
            for v in 1..=10u32 {
                assert_eq!(g.delete_edge(0, v), model.remove(&v), "round {round}");
            }
            assert!(!g.is_treap_backed(0));
            for v in 1..=12u32 {
                assert_eq!(g.has_edge(0, v), model.contains(&v));
            }
            for v in 11..=12u32 {
                g.delete_edge(0, v);
                model.remove(&v);
            }
        }
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn from_csr_counted_reports_dropped_self_loops() {
        // A multigraph fixture: self-loops survive the builder when asked
        // for; the dynamic representation strips them *deliberately* and
        // says so.
        let g0 = crate::GraphBuilder::undirected(4)
            .with_self_loops()
            .add_edges([(0, 0), (0, 1), (1, 2), (2, 2), (2, 3)])
            .build();
        assert_eq!(g0.num_edges(), 5);
        let (d, dropped) = DynGraph::from_csr_counted(&g0);
        assert_eq!(dropped, 2, "both self-loops stripped");
        assert_eq!(d.num_edges(), g0.num_edges() - dropped);
        // Round trip: the simple part of the graph survives exactly.
        let g1 = d.to_csr();
        assert_eq!(g1.num_edges(), 3);
        for v in 0..4u32 {
            let mut a: Vec<_> = g0.neighbors(v).filter(|&w| w != v).collect();
            let mut b: Vec<_> = g1.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn ensure_vertex_grows() {
        let mut g = DynGraph::new(0);
        assert_eq!(g.num_vertices(), 0);
        g.ensure_vertex(5);
        assert_eq!(g.num_vertices(), 6);
        assert!(g.insert_edge(5, 3));
        g.ensure_vertex(2); // already in range: no-op
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(5), 1);
    }
}
