//! Streaming graph engine: batched mutations with epoch-versioned
//! immutable CSR snapshots.
//!
//! The paper lists dynamic-network analysis as ongoing work; this module
//! is the mutation path that makes it real. A [`StreamingGraph`] ingests
//! edge insert/delete ops ([`EdgeOp`]) into the [`DynGraph`] delta layer
//! and periodically *delta-merges* into a new immutable [`CsrGraph`]
//! snapshot published behind an `Arc`. The design generalizes the
//! epoch-stamp idiom of [`crate::scratch`] from per-traversal scratch to
//! whole-graph versions, and follows the snapshot/compaction discipline
//! of Dhulipala–Blelloch–Shun (PLDI 2019) and the wait-free-snapshot
//! model of arXiv 2310.02380:
//!
//! * **Writers never rebuild from scratch.** [`StreamingGraph::merge`]
//!   produces the next CSR by a linear merge-walk of the previous
//!   snapshot's (sorted) edge list against the sorted *net* delta —
//!   `O(m + n + d log d)` for `d` net-changed edges, versus the
//!   `O(m log m)` sort a full [`DynGraph::to_csr`] rebuild pays.
//! * **Readers never block writers.** A published [`Snapshot`] is an
//!   `Arc<CsrGraph>` behind a pointer-sized swap; readers clone the `Arc`
//!   (a [`SnapshotReader`] can do so from any thread) and keep analyzing
//!   a complete, immutable epoch while the writer ingests and publishes
//!   the next one. There are no torn reads: an epoch is visible only
//!   after its CSR is fully built.
//! * **Epochs are the cache/invalidations key.** Every snapshot carries a
//!   monotonically increasing epoch number; downstream results keyed by
//!   `(epoch, query)` stay valid exactly as long as the epoch is current.
//!
//! Ops that do not change the graph (duplicate inserts, deletes of absent
//! edges, self-loops) are counted as `rejected` but are otherwise
//! harmless, so a noisy external stream can be replayed verbatim.
//! Previously unseen vertex ids grow the vertex set automatically.
//!
//! ```
//! use snap_graph::stream::{EdgeOp, StreamingGraph};
//! use snap_graph::Graph;
//!
//! let mut sg = StreamingGraph::new(0);
//! sg.apply_batch(&[
//!     EdgeOp::Insert(0, 1),
//!     EdgeOp::Insert(1, 2),
//!     EdgeOp::Delete(0, 1),
//! ]);
//! let snap = sg.merge();
//! assert_eq!(snap.epoch, 1);
//! assert_eq!(snap.graph.num_edges(), 1);
//! ```

use crate::csr::CsrGraph;
use crate::dynamic::DynGraph;
use crate::traits::{Graph, WeightedGraph};
use crate::{EdgeId, VertexId, Weight};
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read the published snapshot, recovering from lock poisoning.
///
/// A panicking thread that held the write guard (say a merge unwinding
/// out of an instrumentation callback) poisons the `RwLock`, but the
/// protected [`Snapshot`] can never be left torn: it is only ever
/// replaced wholesale with a fully-built value, and its payload is
/// immutable `Arc` data. In a resident process the readers must outlive
/// one writer crash, so poisoning is explicitly not propagated.
fn read_published(lock: &RwLock<Snapshot>) -> RwLockReadGuard<'_, Snapshot> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock the published snapshot; see [`read_published`] for why
/// poisoning is recovered rather than propagated.
fn write_published(lock: &RwLock<Snapshot>) -> RwLockWriteGuard<'_, Snapshot> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// One edge mutation in the stream. Endpoint order is irrelevant (the
/// graph is undirected); self-loops are rejected at ingestion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Delete edge `{u, v}`.
    Delete(VertexId, VertexId),
}

/// An immutable, complete version of the graph. Cheap to clone (the
/// graph is shared behind an `Arc`); cloning is how readers detach from
/// the writer.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Version number: 0 for the initial graph, +1 per [`StreamingGraph::merge`].
    pub epoch: u64,
    /// The frozen CSR for this epoch.
    pub graph: Arc<CsrGraph>,
}

/// A cloneable, thread-safe handle for observing published snapshots.
///
/// Readers call [`SnapshotReader::snapshot`] and work on the returned
/// `Arc` without holding any lock; the writer's publish is a single
/// pointer swap under the hood, so neither side waits for the other's
/// compute.
#[derive(Clone, Debug)]
pub struct SnapshotReader(Arc<RwLock<Snapshot>>);

impl SnapshotReader {
    /// The most recently published complete epoch. Survives writer
    /// panics: a poisoned lock still holds a complete snapshot (the
    /// payload is only ever replaced whole), so readers recover via
    /// `PoisonError::into_inner` instead of crashing.
    pub fn snapshot(&self) -> Snapshot {
        read_published(&self.0).clone()
    }

    /// Epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        read_published(&self.0).epoch
    }
}

/// Outcome of one [`StreamingGraph::apply_batch`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Ops ingested (applied + rejected).
    pub ops: u64,
    /// Inserts that added a new edge.
    pub inserted: u64,
    /// Deletes that removed a present edge.
    pub deleted: u64,
    /// No-op mutations: duplicate inserts, deletes of absent edges,
    /// self-loops.
    pub rejected: u64,
    /// Set when the batch tripped the auto-merge policy; holds the epoch
    /// that was published.
    pub merged_epoch: Option<u64>,
}

impl BatchStats {
    /// Tally one op and its [`StreamingGraph::apply`] outcome.
    pub fn note(&mut self, op: EdgeOp, changed: bool) {
        self.ops += 1;
        match (changed, op) {
            (true, EdgeOp::Insert(..)) => self.inserted += 1,
            (true, EdgeOp::Delete(..)) => self.deleted += 1,
            (false, _) => self.rejected += 1,
        }
    }
}

/// Streaming mutation engine over a [`DynGraph`] delta layer with
/// epoch-versioned immutable CSR snapshots. See the [module docs](self).
#[derive(Debug)]
pub struct StreamingGraph {
    /// The live graph: last snapshot plus every op since.
    live: DynGraph,
    /// Net per-edge change since the last merge: canonical `(u, v)` (with
    /// `u < v`) mapped to its current liveness. An edge inserted and then
    /// deleted within one epoch settles back to a no-op at merge time.
    pending: HashMap<(VertexId, VertexId), bool>,
    published: Arc<RwLock<Snapshot>>,
    ops_since_merge: u64,
    merge_every_ops: Option<u64>,
}

#[inline]
fn canon(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl StreamingGraph {
    /// Empty streaming graph on `n` vertices at epoch 0.
    pub fn new(n: usize) -> Self {
        Self::from_dyn(DynGraph::new(n))
    }

    /// Adopt an existing dynamic graph as epoch 0 (snapshotting it once).
    pub fn from_dyn(live: DynGraph) -> Self {
        let graph = Arc::new(live.to_csr());
        StreamingGraph {
            live,
            pending: HashMap::new(),
            published: Arc::new(RwLock::new(Snapshot { epoch: 0, graph })),
            ops_since_merge: 0,
            merge_every_ops: None,
        }
    }

    /// Seed the stream from a static graph. The CSR becomes the epoch-0
    /// snapshot; the returned count is the number of source edges the
    /// simple-graph delta layer deliberately stripped (self-loops — see
    /// [`DynGraph::from_csr_counted`]). When it is non-zero the epoch-0
    /// snapshot is re-frozen from the stripped graph so that snapshot and
    /// delta layer always agree.
    pub fn from_csr(g: &CsrGraph) -> (Self, usize) {
        let (live, dropped) = DynGraph::from_csr_counted(g);
        let graph = if dropped == 0 {
            Arc::new(g.clone())
        } else {
            Arc::new(live.to_csr())
        };
        (
            StreamingGraph {
                live,
                pending: HashMap::new(),
                published: Arc::new(RwLock::new(Snapshot { epoch: 0, graph })),
                ops_since_merge: 0,
                merge_every_ops: None,
            },
            dropped,
        )
    }

    /// Publish a new epoch automatically once `k` ops have been ingested
    /// since the last merge (checked at batch granularity, so a batch is
    /// never split across epochs). Default: merge only on explicit
    /// [`Self::merge`] calls.
    pub fn with_merge_every(mut self, k: u64) -> Self {
        self.merge_every_ops = Some(k.max(1));
        self
    }

    /// The live (not yet snapshotted) graph.
    pub fn live(&self) -> &DynGraph {
        &self.live
    }

    /// Vertices in the live graph.
    pub fn num_vertices(&self) -> usize {
        self.live.num_vertices()
    }

    /// Edges in the live graph.
    pub fn num_edges(&self) -> usize {
        self.live.num_edges()
    }

    /// Net-changed edges (the delta) since the last published epoch.
    pub fn delta_edges(&self) -> usize {
        self.pending.len()
    }

    /// Ops ingested since the last published epoch.
    pub fn ops_since_merge(&self) -> u64 {
        self.ops_since_merge
    }

    /// Epoch of the latest published snapshot.
    pub fn epoch(&self) -> u64 {
        read_published(&self.published).epoch
    }

    /// Latest published snapshot (clones the `Arc`, not the graph).
    pub fn snapshot(&self) -> Snapshot {
        read_published(&self.published).clone()
    }

    /// A cloneable handle other threads can use to follow published
    /// epochs while this writer keeps ingesting.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader(Arc::clone(&self.published))
    }

    /// Apply one op to the live graph. Returns `true` when the graph
    /// changed (the op was not a duplicate insert / absent delete /
    /// self-loop). Unknown vertex ids grow the vertex set.
    pub fn apply(&mut self, op: EdgeOp) -> bool {
        self.ops_since_merge += 1;
        match op {
            EdgeOp::Insert(u, v) => {
                if u == v {
                    return false;
                }
                self.live.ensure_vertex(u.max(v));
                if self.live.insert_edge(u, v) {
                    self.note(u, v, true);
                    true
                } else {
                    false
                }
            }
            EdgeOp::Delete(u, v) => {
                let n = self.live.num_vertices();
                if u == v || u as usize >= n || v as usize >= n {
                    return false;
                }
                if self.live.delete_edge(u, v) {
                    self.note(u, v, false);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn note(&mut self, u: VertexId, v: VertexId, present: bool) {
        self.pending.insert(canon(u, v), present);
    }

    /// Ingest a batch of ops; auto-merges afterwards when a
    /// [`Self::with_merge_every`] policy is set and due.
    pub fn apply_batch(&mut self, ops: &[EdgeOp]) -> BatchStats {
        let mut stats = BatchStats::default();
        for &op in ops {
            let changed = self.apply(op);
            stats.note(op, changed);
        }
        if let Some(k) = self.merge_every_ops {
            if self.ops_since_merge >= k {
                stats.merged_epoch = Some(self.merge().epoch);
            }
        }
        stats
    }

    /// Delta-merge the pending changes into a new immutable snapshot and
    /// publish it as the next epoch. With an empty delta (and no vertex
    /// growth) this is a no-op that returns the current snapshot without
    /// bumping the epoch.
    ///
    /// Cost: `O(d log d)` to sort the net delta of `d` edges plus one
    /// linear merge-walk over the previous snapshot — the previous edge
    /// list is already sorted, so unlike [`DynGraph::to_csr`] no global
    /// sort is paid. Counters (`delta_edges`, `merge_edges_out`), the
    /// `merge_us` histogram, and the `snapshot_epoch` gauge ride on the
    /// enclosing snap-obs span when collection is enabled.
    pub fn merge(&mut self) -> Snapshot {
        let merge_us = snap_obs::hist("merge_us");
        let timer = merge_us.start();
        let (prev_epoch, base) = {
            let cur = read_published(&self.published);
            (cur.epoch, Arc::clone(&cur.graph))
        };

        let n = self.live.num_vertices().max(base.num_vertices());
        if self.pending.is_empty() && n == base.num_vertices() {
            self.ops_since_merge = 0;
            merge_us.stop_us(timer);
            return Snapshot {
                epoch: prev_epoch,
                graph: base,
            };
        }

        // Net delta relative to the base snapshot. `pending` records
        // liveness in the *live* graph, so an edge toggled back to its
        // base state drops out here.
        let mut added: Vec<(VertexId, VertexId)> = Vec::new();
        let mut removed: Vec<(VertexId, VertexId)> = Vec::new();
        for (&(u, v), &present) in &self.pending {
            let in_base = (u as usize) < base.num_vertices()
                && base.neighbor_slice(u).binary_search(&v).is_ok();
            match (in_base, present) {
                (false, true) => added.push((u, v)),
                (true, false) => removed.push((u, v)),
                _ => {}
            }
        }
        added.sort_unstable();
        removed.sort_unstable();
        snap_obs::add("delta_edges", (added.len() + removed.len()) as u64);

        let graph = Arc::new(merge_csr(&base, n, &added, &removed));
        snap_obs::add("merge_edges_out", graph.num_edges() as u64);
        let epoch = prev_epoch + 1;
        snap_obs::gauge("snapshot_epoch", epoch as f64);
        // Live telemetry: the same facts, but on the process-global
        // export registry so a running sampler (`--metrics-out`) can
        // stream them mid-ingest, span context or not.
        snap_obs::telemetry::export_gauge("snapshot_epoch").set(epoch as f64);
        snap_obs::telemetry::export_gauge("live_edges").set(graph.num_edges() as f64);
        snap_obs::telemetry::export_counter("merges").incr();
        snap_obs::telemetry::export_counter("delta_edges")
            .add((added.len() + removed.len()) as u64);
        let snap = Snapshot {
            epoch,
            graph: Arc::clone(&graph),
        };
        // Publish: readers see either the old complete epoch or the new
        // one — never an intermediate state — because the swap is of one
        // pointer-sized value under the lock.
        *write_published(&self.published) = snap.clone();
        self.pending.clear();
        self.ops_since_merge = 0;
        merge_us.stop_us(timer);
        snap
    }
}

/// Build the successor CSR from `base` by a linear merge-walk against the
/// sorted `added` / `removed` edge deltas (all canonical `u <= v`,
/// strictly ascending). Weights of surviving edges are preserved; added
/// edges get weight 1.
fn merge_csr(
    base: &CsrGraph,
    n: usize,
    added: &[(VertexId, VertexId)],
    removed: &[(VertexId, VertexId)],
) -> CsrGraph {
    let weighted = base.is_weighted();
    let m_new = base.num_edges() + added.len() - removed.len();
    let mut endpoints: Vec<(VertexId, VertexId)> = Vec::with_capacity(m_new);
    let mut weights: Vec<Weight> = Vec::with_capacity(if weighted { m_new } else { 0 });

    // Merge two sorted runs: the base edge list (minus `removed`) and
    // `added`. Both are duplicate-free and disjoint by construction.
    let mut ai = 0usize;
    let mut ri = 0usize;
    for (e, u, v) in base.edges() {
        while ai < added.len() && added[ai] < (u, v) {
            endpoints.push(added[ai]);
            if weighted {
                weights.push(1);
            }
            ai += 1;
        }
        if ri < removed.len() && removed[ri] == (u, v) {
            ri += 1;
            continue;
        }
        endpoints.push((u, v));
        if weighted {
            weights.push(base.edge_weight(e));
        }
    }
    while ai < added.len() {
        endpoints.push(added[ai]);
        if weighted {
            weights.push(1);
        }
        ai += 1;
    }
    debug_assert_eq!(ri, removed.len(), "every removed edge was in the base");
    debug_assert_eq!(endpoints.len(), m_new);
    debug_assert!(endpoints.windows(2).all(|w| w[0] < w[1]), "sorted, unique");

    // Prefix-sum offsets and arc fill, exactly as GraphBuilder does for a
    // sorted, deduplicated edge list. The delta layer holds no self-loops,
    // but the base snapshot may (a seed CSR built `with_self_loops` that
    // dropped nothing): an undirected self-loop contributes one arc.
    let mut offsets = vec![0usize; n + 1];
    for &(u, v) in &endpoints {
        offsets[u as usize + 1] += 1;
        if u != v {
            offsets[v as usize + 1] += 1;
        }
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let num_arcs = offsets[n];
    let mut cursor = offsets.clone();
    let mut targets = vec![0 as VertexId; num_arcs];
    let mut arc_edge_ids = vec![0 as EdgeId; num_arcs];
    for (eid, &(u, v)) in endpoints.iter().enumerate() {
        let e = eid as EdgeId;
        let cu = &mut cursor[u as usize];
        targets[*cu] = v;
        arc_edge_ids[*cu] = e;
        *cu += 1;
        if u != v {
            let cv = &mut cursor[v as usize];
            targets[*cv] = u;
            arc_edge_ids[*cv] = e;
            *cv += 1;
        }
    }

    let g = CsrGraph {
        offsets,
        targets,
        arc_edge_ids,
        endpoints,
        weights,
        directed: false,
    };
    debug_assert_eq!(g.validate(), Ok(()));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::GraphBuilder;

    fn ref_csr(sg: &StreamingGraph) -> CsrGraph {
        sg.live().to_csr()
    }

    fn assert_same(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().map(|(_, u, v)| (u, v)).collect();
        let eb: Vec<_> = b.edges().map(|(_, u, v)| (u, v)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn merge_equals_full_rebuild() {
        let g0 = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let (mut sg, dropped) = StreamingGraph::from_csr(&g0);
        assert_eq!(dropped, 0);
        sg.apply_batch(&[
            EdgeOp::Insert(0, 3),
            EdgeOp::Delete(1, 2),
            EdgeOp::Insert(5, 0),
            EdgeOp::Insert(0, 3), // duplicate: rejected
            EdgeOp::Delete(2, 5), // absent: rejected
        ]);
        let snap = sg.merge();
        assert_eq!(snap.epoch, 1);
        snap.graph.validate().unwrap();
        assert_same(&snap.graph, &ref_csr(&sg));
    }

    #[test]
    fn toggled_edges_cancel_in_the_delta() {
        let g0 = from_edges(4, &[(0, 1), (1, 2)]);
        let (mut sg, _) = StreamingGraph::from_csr(&g0);
        sg.apply_batch(&[
            EdgeOp::Insert(2, 3),
            EdgeOp::Delete(2, 3), // cancels the insert
            EdgeOp::Delete(0, 1),
            EdgeOp::Insert(0, 1), // cancels the delete
        ]);
        // Nothing net changed: zero delta edges survive to the merge.
        let snap = sg.merge();
        assert_eq!(snap.epoch, 1);
        assert_same(&snap.graph, &ref_csr(&sg));
        assert_eq!(snap.graph.num_edges(), 2);
    }

    #[test]
    fn empty_delta_merge_is_a_no_op() {
        let (mut sg, _) = StreamingGraph::from_csr(&from_edges(3, &[(0, 1)]));
        let s0 = sg.snapshot();
        let s1 = sg.merge();
        assert_eq!(s1.epoch, 0);
        assert!(Arc::ptr_eq(&s0.graph, &s1.graph));
    }

    #[test]
    fn vertex_growth_forces_an_epoch() {
        let mut sg = StreamingGraph::new(2);
        sg.apply(EdgeOp::Insert(0, 1));
        sg.merge();
        assert_eq!(sg.snapshot().graph.num_vertices(), 2);
        sg.apply(EdgeOp::Insert(7, 1));
        let snap = sg.merge();
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.graph.num_vertices(), 8);
        assert_same(&snap.graph, &ref_csr(&sg));
    }

    #[test]
    fn weights_survive_the_merge() {
        let g0 = GraphBuilder::undirected(4)
            .add_weighted_edges([(0, 1, 5), (1, 2, 7), (2, 3, 9)])
            .build();
        let (mut sg, _) = StreamingGraph::from_csr(&g0);
        sg.apply_batch(&[EdgeOp::Delete(1, 2), EdgeOp::Insert(0, 3)]);
        let snap = sg.merge();
        use crate::traits::WeightedGraph;
        let w: Vec<(VertexId, VertexId, Weight)> = snap
            .graph
            .edges()
            .map(|(e, u, v)| (u, v, snap.graph.edge_weight(e)))
            .collect();
        assert_eq!(w, vec![(0, 1, 5), (0, 3, 1), (2, 3, 9)]);
    }

    #[test]
    fn auto_merge_policy_fires_at_batch_end() {
        let mut sg = StreamingGraph::new(4).with_merge_every(3);
        let st = sg.apply_batch(&[EdgeOp::Insert(0, 1), EdgeOp::Insert(1, 2)]);
        assert_eq!(st.merged_epoch, None);
        let st = sg.apply_batch(&[EdgeOp::Insert(2, 3)]);
        assert_eq!(st.merged_epoch, Some(1));
        assert_eq!(sg.snapshot().graph.num_edges(), 3);
    }

    #[test]
    fn batch_stats_classify_ops() {
        let mut sg = StreamingGraph::new(3);
        let st = sg.apply_batch(&[
            EdgeOp::Insert(0, 1),
            EdgeOp::Insert(0, 1),
            EdgeOp::Insert(1, 1),
            EdgeOp::Delete(0, 1),
            EdgeOp::Delete(0, 2),
        ]);
        assert_eq!((st.inserted, st.deleted, st.rejected), (1, 1, 3));
        assert_eq!(st.ops, 5);
    }

    #[test]
    fn self_loops_in_seed_survive_until_snapshot_refreeze() {
        let g0 = GraphBuilder::undirected(3)
            .with_self_loops()
            .add_edges([(0, 0), (0, 1)])
            .build();
        let (sg, dropped) = StreamingGraph::from_csr(&g0);
        assert_eq!(dropped, 1);
        // The epoch-0 snapshot was re-frozen to agree with the delta layer.
        assert_eq!(sg.snapshot().graph.num_edges(), 1);
        assert_eq!(sg.num_edges(), 1);
    }

    #[test]
    fn readers_and_merges_survive_a_poisoned_writer() {
        let g0 = from_edges(4, &[(0, 1), (1, 2)]);
        let (mut sg, _) = StreamingGraph::from_csr(&g0);
        let reader = sg.reader();

        // A writer thread takes the write guard and panics while holding
        // it — before this fix the RwLock stayed poisoned and every later
        // reader (and merge) crashed the resident process.
        let lock = Arc::clone(&reader.0);
        let writer = std::thread::spawn(move || {
            let _guard = lock.write().unwrap();
            panic!("writer dies mid-publish");
        });
        assert!(writer.join().is_err(), "writer panicked as arranged");
        assert!(reader.0.is_poisoned(), "lock really was poisoned");

        // Readers recover: the protected snapshot is complete Arc data.
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.snapshot().graph.num_edges(), 2);
        assert_eq!(sg.epoch(), 0);

        // The writer path recovers too: the next merge publishes through
        // the poisoned lock and readers observe the new epoch.
        sg.apply(EdgeOp::Insert(2, 3));
        let snap = sg.merge();
        assert_eq!(snap.epoch, 1);
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.snapshot().graph.num_edges(), 3);
        assert_same(&reader.snapshot().graph, &ref_csr(&sg));
    }

    #[test]
    fn reader_handle_tracks_epochs() {
        let mut sg = StreamingGraph::new(3);
        let reader = sg.reader();
        assert_eq!(reader.epoch(), 0);
        sg.apply(EdgeOp::Insert(0, 1));
        sg.merge();
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.snapshot().graph.num_edges(), 1);
    }
}
