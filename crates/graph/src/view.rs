//! Filtered graph views: cheap edge deletion over a frozen CSR graph.
//!
//! The divisive community-detection algorithms (Girvan–Newman and the
//! paper's pBD) repeatedly "delete" the highest-betweenness edge and re-run
//! connected components. Rebuilding a CSR graph per deletion would cost
//! `O(m)` each time; instead [`FilteredGraph`] keeps an edge-liveness
//! bitmap — deletion is a single bit write and traversals skip dead arcs.

use crate::bitset::Bitmap;
use crate::csr::CsrGraph;
use crate::traits::{Graph, WeightedGraph};
use crate::{EdgeId, VertexId, Weight};

/// A view of a frozen graph in which edges can be switched off.
///
/// Generic over the backend (default [`CsrGraph`]): the divisive
/// algorithms cut edges over the flat representation, and the same view
/// works unchanged over a [`crate::CompressedCsrGraph`].
#[derive(Clone, Debug)]
pub struct FilteredGraph<'g, G = CsrGraph> {
    base: &'g G,
    live: Bitmap,
    degrees: Vec<u32>,
    live_edges: usize,
}

impl<'g, G: WeightedGraph> FilteredGraph<'g, G> {
    /// A view with every edge live.
    pub fn new(base: &'g G) -> Self {
        let degrees = (0..base.num_vertices())
            .map(|v| base.degree(v as VertexId) as u32)
            .collect();
        FilteredGraph {
            live: Bitmap::ones(base.edge_id_bound()),
            degrees,
            live_edges: base.num_edges(),
            base,
        }
    }

    /// The underlying frozen graph.
    pub fn base(&self) -> &'g G {
        self.base
    }

    /// Is edge `e` still live?
    #[inline]
    pub fn is_live(&self, e: EdgeId) -> bool {
        self.live.get(e as usize)
    }

    /// Delete edge `e`; returns `false` if it was already deleted.
    pub fn delete_edge(&mut self, e: EdgeId) -> bool {
        if !self.live.get(e as usize) {
            return false;
        }
        self.live.clear(e as usize);
        let (u, v) = self.base.edge_endpoints(e);
        self.degrees[u as usize] -= 1;
        if u != v {
            self.degrees[v as usize] -= 1;
        }
        self.live_edges -= 1;
        true
    }

    /// Restore a previously deleted edge; returns `false` if it was live.
    pub fn restore_edge(&mut self, e: EdgeId) -> bool {
        if self.live.get(e as usize) {
            return false;
        }
        self.live.set(e as usize);
        let (u, v) = self.base.edge_endpoints(e);
        self.degrees[u as usize] += 1;
        if u != v {
            self.degrees[v as usize] += 1;
        }
        self.live_edges += 1;
        true
    }

    /// Iterate over the ids of live edges.
    pub fn live_edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.live.iter_ones().map(|e| e as EdgeId)
    }

    /// Compact the view into a standalone [`CsrGraph`] containing only the
    /// live edges (weights preserved, edge ids renumbered densely). The
    /// reference implementation the filtered-view regression tests compare
    /// against; also useful when a long-lived result should not pin the base.
    pub fn rebuild(&self) -> CsrGraph {
        let mut b = if self.base.is_directed() {
            crate::builder::GraphBuilder::directed(self.base.num_vertices())
        } else {
            crate::builder::GraphBuilder::undirected(self.base.num_vertices())
        }
        .with_self_loops()
        .with_capacity(self.live_edges);
        for e in self.live_edge_ids() {
            let (u, v) = self.base.edge_endpoints(e);
            b.add_weighted_edge(u, v, self.base.edge_weight(e));
        }
        b.build()
    }
}

impl<G: WeightedGraph> Graph for FilteredGraph<'_, G> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.live_edges
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        if self.base.is_directed() {
            self.live_edges
        } else {
            2 * self.live_edges
        }
    }

    #[inline]
    fn is_directed(&self) -> bool {
        self.base.is_directed()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbors_with_eid(v).map(|(u, _)| u)
    }

    #[inline]
    fn neighbors_with_eid(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.base
            .neighbors_with_eid(v)
            .filter(|&(_, e)| self.live.get(e as usize))
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.base.edge_endpoints(e)
    }

    #[inline]
    fn edge_id_bound(&self) -> usize {
        self.base.edge_id_bound()
    }

    #[inline]
    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.live_edge_ids()
    }
}

impl<G: WeightedGraph> WeightedGraph for FilteredGraph<'_, G> {
    #[inline]
    fn edge_weight(&self, e: EdgeId) -> Weight {
        self.base.edge_weight(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn square() -> CsrGraph {
        from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn fresh_view_matches_base() {
        let g = square();
        let f = FilteredGraph::new(&g);
        assert_eq!(f.num_edges(), 4);
        assert_eq!(f.num_arcs(), 8);
        for v in g.vertices() {
            assert_eq!(f.degree(v), g.degree(v));
            let a: Vec<_> = f.neighbors(v).collect();
            let b: Vec<_> = g.neighbors(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn delete_hides_both_arcs() {
        let g = square();
        let mut f = FilteredGraph::new(&g);
        // Edge 0 is (0, 1).
        assert!(f.delete_edge(0));
        assert!(!f.delete_edge(0));
        assert_eq!(f.num_edges(), 3);
        assert_eq!(f.degree(0), 1);
        assert_eq!(f.degree(1), 1);
        assert!(!f.neighbors(0).any(|u| u == 1));
        assert!(!f.neighbors(1).any(|u| u == 0));
    }

    #[test]
    fn restore_brings_edge_back() {
        let g = square();
        let mut f = FilteredGraph::new(&g);
        f.delete_edge(2);
        assert!(f.restore_edge(2));
        assert!(!f.restore_edge(2));
        assert_eq!(f.num_edges(), 4);
        assert_eq!(f.degree(2), 2);
    }

    #[test]
    fn live_edge_ids_tracks_deletions() {
        let g = square();
        let mut f = FilteredGraph::new(&g);
        f.delete_edge(1);
        f.delete_edge(3);
        let live: Vec<EdgeId> = f.live_edge_ids().collect();
        assert_eq!(live, vec![0, 2]);
    }
}
