//! Compressed CSR: delta/varint-encoded adjacency with chunked parallel
//! encode/decode and a degree-threshold hybrid mode.
//!
//! The paper's target instances (small-world networks with hundreds of
//! millions of edges) make the flat `u32` adjacency arrays of
//! [`CsrGraph`] the binding memory constraint: 8 bytes per stored arc
//! (target + edge id). Difference encoding of the *sorted* neighbor
//! lists — the [`crate::GraphBuilder`] sorts adjacencies by
//! construction — shrinks that by 2–4× on the skewed-degree graphs SNAP
//! cares about, the technique Dhulipala, Blelloch & Shun use to fit
//! hundred-billion-edge graphs on one machine (Ligra+/GBBS).
//!
//! # Encoding layout
//!
//! One contiguous byte stream plus an `n + 1` byte-offset array. Vertex
//! `v`'s block starts at `byte_offsets[v]`:
//!
//! * **header** varint: `(degree << 1) | raw_flag`;
//! * **raw block** (`raw_flag == 1`, hub vertices at or above the degree
//!   threshold and the fallback for non-canonical edge-id layouts):
//!   `degree` little-endian `u32` targets, then `degree` little-endian
//!   `u32` edge ids — byte-aligned slices decoded with zero arithmetic;
//! * **compressed block** (`raw_flag == 0`): a varint `forward_base`
//!   (the edge id of `v`'s first *forward* arc), then per neighbor in
//!   sorted order the neighbor delta — zig-zag varint `first - v` for
//!   the first neighbor (the sign carries whether `v`'s list starts
//!   below or above it), plain varint gap (`≥ 1`; a gap of `0` would be
//!   a parallel edge, rejected at encode time) for the rest — followed,
//!   for *backward* arcs only, by the arc's edge-id delta (first
//!   backward id raw, subsequent as gaps).
//!
//! Edge ids are not stored per forward arc at all: the builder (and the
//! streaming merge) assign edge ids in sorted canonical `(u, v)` order,
//! so the forward arcs of `v` (to neighbors `≥ v`, or every arc in a
//! digraph) carry *consecutive* ids `forward_base + i`, and the backward
//! arcs' ids are strictly increasing in the neighbor — varint-gap
//! material. This is what pushes the stream under ~2 bytes/arc where the
//! flat arrays pay 8.
//!
//! # Chunked parallel decode
//!
//! Kernels run unchanged through the streaming [`Graph`] iterators.
//! Whole-graph sweeps use [`CompressedCsrGraph::par_for_each_adjacency`]:
//! vertices are split into fixed chunks, each chunk decoded by one rayon
//! worker into per-thread scratch acquired from a
//! [`ScratchPool<DecodeScratch>`] (the checkout shape of
//! [`crate::WorkspacePool`]), and the callback sees plain `&[VertexId]` /
//! `&[EdgeId]` slices. Decoded chunks are counted on the `decode_chunks`
//! obs counter; resident adjacency bytes surface as the `ccsr_bytes`
//! gauge.

use crate::csr::CsrGraph;
use crate::scratch::ScratchPool;
use crate::traits::{Graph, WeightedGraph};
use crate::{EdgeId, VertexId, Weight};
use rayon::prelude::*;

/// Degree at or above which a vertex's block stays uncompressed by
/// default: hubs are exactly the rows hot traversals scan most, and a
/// raw block decodes as a slice copy instead of per-arc arithmetic,
/// while contributing near-zero compression loss (skewed graphs have
/// few hubs, each already near the varint break-even density).
pub const DEFAULT_HUB_THRESHOLD: usize = 1024;

/// Vertices per parallel encode/decode chunk.
const CHUNK: usize = 1024;

/// Variable-length integer and zig-zag primitives for the adjacency
/// stream. Public so the round-trip property tests exercise the codec
/// directly.
pub mod codec {
    /// Append `x` as an LEB128 varint (7 bits per byte, high bit =
    /// continuation).
    #[inline]
    pub fn write_varint(out: &mut Vec<u8>, mut x: u64) {
        loop {
            let byte = (x & 0x7f) as u8;
            x >>= 7;
            if x == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    /// Read a varint at `*pos`, advancing it past the encoding.
    #[inline]
    pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = buf[*pos];
            *pos += 1;
            x |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return x;
            }
            shift += 7;
        }
    }

    /// Zig-zag map a signed delta to an unsigned varint payload
    /// (`0, -1, 1, -2, ... -> 0, 1, 2, 3, ...`).
    #[inline]
    pub fn zigzag(x: i64) -> u64 {
        ((x << 1) ^ (x >> 63)) as u64
    }

    /// Inverse of [`zigzag`].
    #[inline]
    pub fn unzigzag(x: u64) -> i64 {
        ((x >> 1) as i64) ^ -((x & 1) as i64)
    }

    /// Encode a sorted neighbor list relative to its owning vertex `v`:
    /// zig-zag first delta, then plain gaps. Rejects gap 0 (a parallel
    /// edge) and unsorted input. Round-trip partner of [`decode_sorted`].
    pub fn encode_sorted(v: u32, neighbors: &[u32], out: &mut Vec<u8>) -> Result<(), String> {
        for w in neighbors.windows(2) {
            if w[1] == w[0] {
                return Err(format!("parallel edge to {} in adjacency of {v}", w[0]));
            }
            if w[1] < w[0] {
                return Err(format!(
                    "unsorted adjacency of {v}: {} after {}",
                    w[1], w[0]
                ));
            }
        }
        write_varint(out, neighbors.len() as u64);
        let mut prev = 0u32;
        for (i, &nb) in neighbors.iter().enumerate() {
            if i == 0 {
                write_varint(out, zigzag(i64::from(nb) - i64::from(v)));
            } else {
                write_varint(out, u64::from(nb - prev));
            }
            prev = nb;
        }
        Ok(())
    }

    /// Decode a list produced by [`encode_sorted`].
    pub fn decode_sorted(v: u32, buf: &[u8], pos: &mut usize) -> Vec<u32> {
        let d = read_varint(buf, pos) as usize;
        let mut out = Vec::with_capacity(d);
        let mut prev = 0u32;
        for i in 0..d {
            let nb = if i == 0 {
                (i64::from(v) + unzigzag(read_varint(buf, pos))) as u32
            } else {
                prev + read_varint(buf, pos) as u32
            };
            out.push(nb);
            prev = nb;
        }
        out
    }
}

use codec::{read_varint, unzigzag, write_varint, zigzag};

/// Per-thread decode target for the chunked parallel decoder: the
/// neighbor/edge-id slices of one vertex at a time, reused across every
/// vertex a worker decodes.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    targets: Vec<VertexId>,
    eids: Vec<EdgeId>,
}

impl DecodeScratch {
    /// Fresh empty scratch (buffers grow to the max decoded degree).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently held by the scratch buffers.
    pub fn bytes(&self) -> usize {
        (self.targets.capacity() + self.eids.capacity()) * 4
    }
}

/// Immutable graph stored as delta/varint-compressed adjacency blocks.
///
/// Behaviorally identical to the [`CsrGraph`] it was built from: same
/// vertices, same edges, same edge ids, same sorted neighbor order —
/// every [`Graph`] kernel produces bit-identical output on either
/// backend (enforced by the equivalence proptests and the CI
/// `fixture_hash` cross-check). Edge *payload* (canonical endpoints,
/// weights) stays flat: `edge_endpoints(e)` must be O(1) for the
/// edge-centric algorithms, and those arrays are per-edge, not per-arc.
#[derive(Clone, Debug)]
pub struct CompressedCsrGraph {
    /// Block start of vertex `v` at `[v]`; `[n]` is the stream length.
    byte_offsets: Vec<usize>,
    /// Concatenated per-vertex adjacency blocks.
    stream: Vec<u8>,
    /// Canonical endpoints per edge id (`u <= v` when undirected).
    endpoints: Vec<(VertexId, VertexId)>,
    /// Per-edge weights; empty = unweighted (all 1).
    weights: Vec<Weight>,
    directed: bool,
    num_arcs: usize,
    /// Degree threshold at or above which blocks were stored raw.
    hub_threshold: usize,
    /// How many vertices ended up with raw blocks.
    raw_blocks: usize,
}

impl CompressedCsrGraph {
    /// Compress `g` with the [`DEFAULT_HUB_THRESHOLD`].
    pub fn from_csr(g: &CsrGraph) -> Self {
        Self::from_csr_with_threshold(g, DEFAULT_HUB_THRESHOLD)
    }

    /// Compress `g`, keeping vertices of degree `>= hub_threshold` as
    /// raw (uncompressed) blocks. `usize::MAX` compresses everything;
    /// `0` stores every vertex raw (useful to isolate decode overhead
    /// in A/B benches).
    ///
    /// # Panics
    ///
    /// On a malformed adjacency (duplicate neighbor = parallel edge,
    /// or unsorted rows) — impossible for builder-produced graphs.
    pub fn from_csr_with_threshold(g: &CsrGraph, hub_threshold: usize) -> Self {
        Self::try_from_csr(g, hub_threshold).expect("valid CSR adjacency")
    }

    /// Fallible [`Self::from_csr_with_threshold`]: chunked parallel
    /// encode, `Err` on adjacencies no simple graph can have.
    pub fn try_from_csr(g: &CsrGraph, hub_threshold: usize) -> Result<Self, String> {
        let _span = snap_obs::span("ccsr.encode");
        let n = g.num_vertices();
        let directed = g.is_directed();
        let chunk_bounds: Vec<(usize, usize)> = (0..n)
            .step_by(CHUNK.max(1))
            .map(|lo| (lo, (lo + CHUNK).min(n)))
            .collect();
        // Encode each chunk into its own buffer in parallel, tracking
        // per-vertex block lengths for the offset prefix sum.
        type EncodedChunk = (Vec<u8>, Vec<u32>, usize);
        let encoded: Vec<Result<EncodedChunk, String>> = chunk_bounds
            .par_iter()
            .map(|&(lo, hi)| {
                let mut buf = Vec::new();
                let mut lens = Vec::with_capacity(hi - lo);
                let mut raw_blocks = 0usize;
                for v in lo..hi {
                    let before = buf.len();
                    let v = v as VertexId;
                    let raw = encode_block(
                        v,
                        g.neighbor_slice(v),
                        g.eid_slice(v),
                        directed,
                        hub_threshold,
                        &mut buf,
                    )?;
                    raw_blocks += raw as usize;
                    lens.push((buf.len() - before) as u32);
                }
                Ok((buf, lens, raw_blocks))
            })
            .collect();
        let encoded = encoded.into_iter().collect::<Result<Vec<_>, String>>()?;

        let mut byte_offsets = Vec::with_capacity(n + 1);
        byte_offsets.push(0usize);
        let total: usize = encoded.iter().map(|(buf, _, _)| buf.len()).sum();
        let mut stream = Vec::with_capacity(total);
        let mut raw_blocks = 0usize;
        for (buf, lens, raws) in &encoded {
            for &len in lens {
                byte_offsets.push(byte_offsets.last().unwrap() + len as usize);
            }
            stream.extend_from_slice(buf);
            raw_blocks += raws;
        }
        debug_assert_eq!(*byte_offsets.last().unwrap(), stream.len());

        let ccsr = CompressedCsrGraph {
            byte_offsets,
            stream,
            endpoints: g.edges().map(|(_, u, v)| (u, v)).collect(),
            weights: if g.is_weighted() {
                (0..g.num_edges() as EdgeId)
                    .map(|e| g.edge_weight(e))
                    .collect()
            } else {
                Vec::new()
            },
            directed,
            num_arcs: g.num_arcs(),
            hub_threshold,
            raw_blocks,
        };
        if snap_obs::is_enabled() {
            snap_obs::gauge_max("ccsr_bytes", ccsr.adjacency_bytes() as f64);
        }
        Ok(ccsr)
    }

    /// Bytes resident for the adjacency structure (offset array + byte
    /// stream). The comparable figure for the flat backend is
    /// [`CsrGraph::adjacency_bytes`]; edge payload (endpoints, weights)
    /// is identical on both and excluded from both.
    pub fn adjacency_bytes(&self) -> usize {
        self.byte_offsets.len() * std::mem::size_of::<usize>() + self.stream.len()
    }

    /// The degree threshold this graph was compressed with.
    pub fn hub_threshold(&self) -> usize {
        self.hub_threshold
    }

    /// How many vertices kept raw (uncompressed) blocks.
    pub fn raw_blocks(&self) -> usize {
        self.raw_blocks
    }

    /// True if the graph carries non-unit weights.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Iterate over all edges as `(edge_id, u, v)` with canonical
    /// endpoints (mirror of [`CsrGraph::edges`]).
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e as EdgeId, u, v))
    }

    /// Decode vertex `v`'s adjacency into `scratch`, returning the
    /// neighbor and edge-id slices. The single-vertex primitive under
    /// [`Self::par_for_each_adjacency`]; also the fast path for callers
    /// that re-scan one row many times.
    pub fn decode_into<'s>(
        &self,
        v: VertexId,
        scratch: &'s mut DecodeScratch,
    ) -> (&'s [VertexId], &'s [EdgeId]) {
        scratch.targets.clear();
        scratch.eids.clear();
        for (nb, e) in self.neighbors_with_eid(v) {
            scratch.targets.push(nb);
            scratch.eids.push(e);
        }
        (&scratch.targets, &scratch.eids)
    }

    /// Decode every vertex's adjacency in fixed-size vertex chunks, in
    /// parallel, calling `f(v, neighbors, edge_ids)` with slices into
    /// per-thread scratch. Each chunk checks one [`DecodeScratch`] out
    /// of `pool` for its whole run; decoded chunks land on the
    /// `decode_chunks` obs counter.
    pub fn par_for_each_adjacency<F>(&self, pool: &ScratchPool<DecodeScratch>, f: F)
    where
        F: Fn(VertexId, &[VertexId], &[EdgeId]) + Sync,
    {
        let n = self.num_vertices();
        let chunk_bounds: Vec<(usize, usize)> = (0..n)
            .step_by(CHUNK)
            .map(|lo| (lo, (lo + CHUNK).min(n)))
            .collect();
        chunk_bounds.par_iter().for_each(|&(lo, hi)| {
            let mut scratch = pool.acquire();
            for v in lo..hi {
                let v = v as VertexId;
                let (targets, eids) = self.decode_into(v, &mut scratch);
                f(v, targets, eids);
            }
        });
        snap_obs::add("decode_chunks", chunk_bounds.len() as u64);
    }

    /// Check structural invariants against the flat edge payload:
    /// every decoded arc's edge id must map back to its canonical
    /// endpoint pair, arc count must match, rows must be sorted.
    /// `O(n + m)`; used by tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.byte_offsets.len() != n + 1 {
            return Err("byte_offsets length mismatch".into());
        }
        if *self.byte_offsets.last().unwrap() != self.stream.len() {
            return Err("final byte offset != stream length".into());
        }
        let mut arcs = 0usize;
        for v in self.vertices() {
            let mut prev: Option<VertexId> = None;
            for (nb, e) in self.neighbors_with_eid(v) {
                if (nb as usize) >= n {
                    return Err(format!("arc target {nb} out of range"));
                }
                if (e as usize) >= self.endpoints.len() {
                    return Err(format!("edge id {e} out of range"));
                }
                if let Some(p) = prev {
                    if nb <= p {
                        return Err(format!("adjacency of {v} not strictly increasing"));
                    }
                }
                let (a, b) = self.endpoints[e as usize];
                let ok = if self.directed {
                    (a, b) == (v, nb)
                } else {
                    (a.min(b), a.max(b)) == (v.min(nb), v.max(nb))
                };
                if !ok {
                    return Err(format!(
                        "arc {v}->{nb} disagrees with endpoints of edge {e}"
                    ));
                }
                prev = Some(nb);
                arcs += 1;
            }
        }
        if arcs != self.num_arcs {
            return Err(format!("decoded {arcs} arcs, expected {}", self.num_arcs));
        }
        Ok(())
    }
}

/// Encode one vertex's adjacency block; returns whether it was stored
/// raw. Raw is chosen for hub rows (`degree >= hub_threshold`) and as a
/// correctness fallback when the edge ids do not follow the canonical
/// builder layout (consecutive forward ids, increasing backward ids).
fn encode_block(
    v: VertexId,
    targets: &[VertexId],
    eids: &[EdgeId],
    directed: bool,
    hub_threshold: usize,
    out: &mut Vec<u8>,
) -> Result<bool, String> {
    let d = targets.len();
    for w in targets.windows(2) {
        if w[1] == w[0] {
            return Err(format!("parallel edge to {} in adjacency of {v}", w[0]));
        }
        if w[1] < w[0] {
            return Err(format!("unsorted adjacency of {v}"));
        }
    }
    // Split point: arcs at or after `split` are forward (neighbor >= v;
    // every arc of a digraph), whose edge ids the canonical layout makes
    // consecutive. Before it, backward arcs with increasing ids.
    let split = if directed {
        0
    } else {
        targets.partition_point(|&nb| nb < v)
    };
    let forward_base = eids.get(split).copied().unwrap_or(0);
    let canonical = eids[split..]
        .iter()
        .enumerate()
        .all(|(i, &e)| e == forward_base + i as EdgeId)
        && eids[..split].windows(2).all(|w| w[0] < w[1]);
    let raw = d >= hub_threshold || !canonical;

    write_varint(out, ((d as u64) << 1) | u64::from(raw));
    if d == 0 {
        return Ok(false);
    }
    if raw {
        for &nb in targets {
            out.extend_from_slice(&nb.to_le_bytes());
        }
        for &e in eids {
            out.extend_from_slice(&e.to_le_bytes());
        }
        return Ok(true);
    }
    write_varint(out, u64::from(forward_base));
    let mut prev_nb = 0u32;
    let mut prev_back_eid: Option<EdgeId> = None;
    for (i, (&nb, &e)) in targets.iter().zip(eids).enumerate() {
        if i == 0 {
            write_varint(out, zigzag(i64::from(nb) - i64::from(v)));
        } else {
            write_varint(out, u64::from(nb - prev_nb));
        }
        prev_nb = nb;
        if i < split {
            match prev_back_eid {
                None => write_varint(out, u64::from(e)),
                Some(p) => write_varint(out, u64::from(e - p)),
            }
            prev_back_eid = Some(e);
        }
    }
    Ok(false)
}

/// Streaming decoder over one adjacency block, yielding
/// `(neighbor, edge_id)` in sorted neighbor order.
pub struct CcsrArcs<'g> {
    stream: &'g [u8],
    pos: usize,
    remaining: usize,
    v: VertexId,
    directed: bool,
    raw: bool,
    /// Raw blocks: cursor into the edge-id half (targets at `pos`).
    raw_eid_pos: usize,
    /// Compressed blocks: running decode state.
    forward_base: EdgeId,
    forward_seen: EdgeId,
    prev_nb: VertexId,
    prev_back_eid: Option<EdgeId>,
    first: bool,
}

impl<'g> CcsrArcs<'g> {
    fn new(g: &'g CompressedCsrGraph, v: VertexId) -> Self {
        let stream = &g.stream;
        let mut pos = g.byte_offsets[v as usize];
        let header = read_varint(stream, &mut pos);
        let raw = header & 1 == 1;
        let d = (header >> 1) as usize;
        let mut it = CcsrArcs {
            stream,
            pos,
            remaining: d,
            v,
            directed: g.directed,
            raw,
            raw_eid_pos: 0,
            forward_base: 0,
            forward_seen: 0,
            prev_nb: 0,
            prev_back_eid: None,
            first: true,
        };
        if d > 0 {
            if raw {
                it.raw_eid_pos = pos + 4 * d;
            } else {
                it.forward_base = read_varint(stream, &mut it.pos) as EdgeId;
            }
        }
        it
    }
}

impl Iterator for CcsrArcs<'_> {
    type Item = (VertexId, EdgeId);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, EdgeId)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.raw {
            let nb = u32::from_le_bytes(self.stream[self.pos..self.pos + 4].try_into().unwrap());
            let e = u32::from_le_bytes(
                self.stream[self.raw_eid_pos..self.raw_eid_pos + 4]
                    .try_into()
                    .unwrap(),
            );
            self.pos += 4;
            self.raw_eid_pos += 4;
            return Some((nb, e));
        }
        let nb = if self.first {
            self.first = false;
            (i64::from(self.v) + unzigzag(read_varint(self.stream, &mut self.pos))) as VertexId
        } else {
            self.prev_nb + read_varint(self.stream, &mut self.pos) as VertexId
        };
        self.prev_nb = nb;
        let e = if !self.directed && nb < self.v {
            let delta = read_varint(self.stream, &mut self.pos) as EdgeId;
            let e = match self.prev_back_eid {
                None => delta,
                Some(p) => p + delta,
            };
            self.prev_back_eid = Some(e);
            e
        } else {
            let e = self.forward_base + self.forward_seen;
            self.forward_seen += 1;
            e
        };
        Some((nb, e))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for CcsrArcs<'_> {}

impl Graph for CompressedCsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.byte_offsets.len() - 1
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    #[inline]
    fn is_directed(&self) -> bool {
        self.directed
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let mut pos = self.byte_offsets[v as usize];
        (read_varint(&self.stream, &mut pos) >> 1) as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        CcsrArcs::new(self, v).map(|(nb, _)| nb)
    }

    #[inline]
    fn neighbors_with_eid(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        CcsrArcs::new(self, v)
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e as usize]
    }
}

impl WeightedGraph for CompressedCsrGraph {
    #[inline]
    fn edge_weight(&self, e: EdgeId) -> Weight {
        if self.weights.is_empty() {
            1
        } else {
            self.weights[e as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges, GraphBuilder};

    fn assert_equivalent(g: &CsrGraph, c: &CompressedCsrGraph) {
        assert_eq!(g.num_vertices(), c.num_vertices());
        assert_eq!(g.num_edges(), c.num_edges());
        assert_eq!(g.num_arcs(), c.num_arcs());
        assert_eq!(g.is_directed(), c.is_directed());
        for v in g.vertices() {
            assert_eq!(g.degree(v), c.degree(v), "degree of {v}");
            let a: Vec<_> = g.neighbors_with_eid(v).collect();
            let b: Vec<_> = c.neighbors_with_eid(v).collect();
            assert_eq!(a, b, "adjacency of {v}");
        }
        for e in 0..g.num_edges() as EdgeId {
            assert_eq!(g.edge_endpoints(e), c.edge_endpoints(e));
            assert_eq!(g.edge_weight(e), c.edge_weight(e));
        }
        c.validate().unwrap();
    }

    #[test]
    fn varint_round_trip_edges() {
        let mut buf = Vec::new();
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            codec::write_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(codec::read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
        for x in [0i64, -1, 1, i64::from(u32::MAX), -i64::from(u32::MAX)] {
            assert_eq!(codec::unzigzag(codec::zigzag(x)), x);
        }
    }

    #[test]
    fn encode_sorted_rejects_gap_zero() {
        let mut buf = Vec::new();
        let err = codec::encode_sorted(0, &[3, 3], &mut buf).unwrap_err();
        assert!(err.contains("parallel edge"), "{err}");
        assert!(codec::encode_sorted(0, &[5, 2], &mut buf).is_err());
    }

    #[test]
    fn round_trip_small_graphs() {
        let g = from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        assert_equivalent(&g, &CompressedCsrGraph::from_csr(&g));
        // Everything raw and everything compressed must also agree.
        assert_equivalent(&g, &CompressedCsrGraph::from_csr_with_threshold(&g, 0));
        let all = CompressedCsrGraph::from_csr_with_threshold(&g, usize::MAX);
        assert_equivalent(&g, &all);
        assert_eq!(all.raw_blocks(), 0);
    }

    #[test]
    fn round_trip_directed_and_weighted() {
        let d = GraphBuilder::directed(5)
            .add_edges([(2, 0), (0, 1), (4, 2), (1, 4), (0, 3)])
            .build();
        assert_equivalent(
            &d,
            &CompressedCsrGraph::from_csr_with_threshold(&d, usize::MAX),
        );
        let w = GraphBuilder::undirected(4)
            .add_weighted_edges([(0, 1, 7), (1, 2, 3), (2, 3, 9), (0, 3, 2)])
            .build();
        let cw = CompressedCsrGraph::from_csr(&w);
        assert!(cw.is_weighted());
        assert_equivalent(&w, &cw);
    }

    #[test]
    fn round_trip_self_loops_and_isolated() {
        let g = GraphBuilder::undirected(5)
            .with_self_loops()
            .add_edges([(0, 0), (0, 1), (2, 2), (1, 3)])
            .build();
        assert_equivalent(
            &g,
            &CompressedCsrGraph::from_csr_with_threshold(&g, usize::MAX),
        );
        let empty = CsrGraph::empty(4, false);
        assert_equivalent(&empty, &CompressedCsrGraph::from_csr(&empty));
    }

    #[test]
    fn hub_threshold_splits_blocks() {
        // Star: the center has degree 32, leaves degree 1.
        let edges: Vec<(u32, u32)> = (1..=32).map(|i| (0, i)).collect();
        let g = from_edges(33, &edges);
        let c = CompressedCsrGraph::from_csr_with_threshold(&g, 32);
        assert_eq!(c.raw_blocks(), 1);
        assert_equivalent(&g, &c);
    }

    #[test]
    fn compression_shrinks_adjacency() {
        // Ring: degree 2, so the shared n-vertex offset array dominates
        // both backends — still expect a strict win, with the stream
        // itself far under the flat 8 bytes/arc.
        let edges: Vec<(u32, u32)> = (0..512u32).map(|i| (i, (i + 1) % 512)).collect();
        let g = from_edges(512, &edges);
        let c = CompressedCsrGraph::from_csr_with_threshold(&g, usize::MAX);
        assert!(
            c.adjacency_bytes() < g.adjacency_bytes(),
            "compressed {} vs flat {}",
            c.adjacency_bytes(),
            g.adjacency_bytes()
        );
        // Denser random graph (average degree ~16, the paper's R-MAT
        // shape): the whole structure lands at or under 60% of flat —
        // the acceptance target for the scale-18 run.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 2048u32;
        let mut edges = Vec::new();
        for _ in 0..(n as usize * 8) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u, v));
            }
        }
        let g = from_edges(n as usize, &edges);
        let c = CompressedCsrGraph::from_csr(&g);
        assert!(
            c.adjacency_bytes() * 10 <= g.adjacency_bytes() * 6,
            "compressed {} vs flat {} exceeds 60%",
            c.adjacency_bytes(),
            g.adjacency_bytes()
        );
    }

    #[test]
    fn chunked_decoder_covers_every_arc() {
        let edges: Vec<(u32, u32)> = (0..300u32)
            .flat_map(|i| [(i, (i + 1) % 300), (i, (i + 7) % 300)])
            .collect();
        let g = from_edges(300, &edges);
        let c = CompressedCsrGraph::from_csr(&g);
        let pool = ScratchPool::<DecodeScratch>::new();
        let arcs = std::sync::atomic::AtomicUsize::new(0);
        c.par_for_each_adjacency(&pool, |v, targets, eids| {
            assert_eq!(targets.len(), eids.len());
            let expect: Vec<_> = g.neighbor_slice(v).to_vec();
            assert_eq!(targets, expect.as_slice());
            arcs.fetch_add(targets.len(), std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(
            arcs.load(std::sync::atomic::Ordering::Relaxed),
            g.num_arcs()
        );
    }

    #[test]
    fn edge_ids_derived_not_stored() {
        // Compressed blocks carry no forward edge ids: a path graph's
        // stream must be far smaller than 4 bytes/arc of id storage.
        let edges: Vec<(u32, u32)> = (0..1000u32).map(|i| (i, i + 1)).collect();
        let g = from_edges(1001, &edges);
        let c = CompressedCsrGraph::from_csr_with_threshold(&g, usize::MAX);
        let stream_bytes = c.adjacency_bytes() - (c.num_vertices() + 1) * 8;
        assert!(
            stream_bytes < g.num_arcs() * 4,
            "stream is {stream_bytes} bytes for {} arcs — ids must not be flat",
            g.num_arcs()
        );
        assert_equivalent(&g, &c);
    }
}
