//! Treaps — randomized search trees (Seidel & Aragon, Algorithmica 1996).
//!
//! SNAP stores the adjacencies of *high-degree* vertices in treaps so that
//! dynamic updates (insert/delete) and set operations (union, intersection,
//! difference — used e.g. when merging adjacency lists of amalgamated
//! communities) run in expected `O(log n)` / `O(m log(n/m))` time, while
//! low-degree vertices keep plain arrays (see [`crate::DynGraph`]).
//!
//! Priorities come from a per-treap xorshift generator, seeded
//! deterministically from a user seed so test runs are reproducible.

use std::cmp::Ordering;

type Link<T> = Option<Box<Node<T>>>;

#[derive(Clone, Debug)]
struct Node<T> {
    key: T,
    priority: u64,
    size: usize,
    left: Link<T>,
    right: Link<T>,
}

impl<T> Node<T> {
    fn new(key: T, priority: u64) -> Box<Self> {
        Box::new(Node {
            key,
            priority,
            size: 1,
            left: None,
            right: None,
        })
    }

    fn update(&mut self) {
        self.size = 1 + size(&self.left) + size(&self.right);
    }
}

#[inline]
fn size<T>(link: &Link<T>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

/// A set of ordered keys backed by a treap.
///
/// ```
/// use snap_graph::Treap;
///
/// let a: Treap<u32> = (0..10).collect();
/// let b: Treap<u32> = (5..15).collect();
/// assert!(a.contains(&7));
/// let union = a.union(b);
/// assert_eq!(union.len(), 15);
/// ```
#[derive(Clone, Debug)]
pub struct Treap<T> {
    root: Link<T>,
    rng_state: u64,
}

impl<T: Ord> Default for Treap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> Treap<T> {
    /// Empty treap with a fixed default seed.
    pub fn new() -> Self {
        Self::with_seed(0x9e37_79b9_7f4a_7c15)
    }

    /// Empty treap whose priority stream is derived from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Treap {
            root: None,
            // xorshift must not start at 0.
            rng_state: seed | 1,
        }
    }

    fn next_priority(&mut self) -> u64 {
        // xorshift64* — cheap, good enough for heap priorities.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Membership test in expected `O(log n)`.
    pub fn contains(&self, key: &T) -> bool {
        let mut cur = &self.root;
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Less => cur = &node.left,
                Ordering::Greater => cur = &node.right,
                Ordering::Equal => return true,
            }
        }
        false
    }

    /// Insert `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: T) -> bool {
        if self.contains(&key) {
            return false;
        }
        let priority = self.next_priority();
        let root = self.root.take();
        self.root = insert_node(root, Node::new(key, priority));
        true
    }

    /// Remove `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: &T) -> bool {
        let (root, removed) = remove_node(self.root.take(), key);
        self.root = root;
        removed
    }

    /// Split into `(< key, >= key)`, consuming `self`.
    pub fn split(mut self, key: &T) -> (Treap<T>, Treap<T>) {
        let (l, r) = split_link(self.root.take(), key);
        (
            Treap {
                root: l,
                rng_state: self.rng_state,
            },
            Treap {
                root: r,
                rng_state: self.rng_state.wrapping_add(0x9e37_79b9),
            },
        )
    }

    /// Join with `other`, all of whose keys must be `>=` every key in
    /// `self`. Panics in debug builds if the precondition is violated.
    pub fn join(mut self, mut other: Treap<T>) -> Treap<T> {
        debug_assert!(
            self.max().is_none()
                || other.min().is_none()
                || self.max().unwrap() <= other.min().unwrap()
        );
        let root = merge(self.root.take(), other.root.take());
        Treap {
            root,
            rng_state: self.rng_state ^ other.rng_state,
        }
    }

    /// Set union, consuming both operands.
    pub fn union(mut self, mut other: Treap<T>) -> Treap<T> {
        let rng = self.rng_state ^ other.rng_state.rotate_left(17);
        let root = union_link(self.root.take(), other.root.take());
        Treap {
            root,
            rng_state: rng | 1,
        }
    }

    /// Set intersection, consuming both operands.
    pub fn intersection(mut self, mut other: Treap<T>) -> Treap<T> {
        let rng = self.rng_state ^ other.rng_state.rotate_left(29);
        let root = intersect_link(self.root.take(), other.root.take());
        Treap {
            root,
            rng_state: rng | 1,
        }
    }

    /// Set difference `self \ other`, consuming both operands.
    pub fn difference(mut self, mut other: Treap<T>) -> Treap<T> {
        let rng = self.rng_state;
        let root = diff_link(self.root.take(), other.root.take());
        Treap {
            root,
            rng_state: rng | 1,
        }
    }

    /// Smallest key.
    pub fn min(&self) -> Option<&T> {
        let mut cur = self.root.as_ref()?;
        while let Some(left) = cur.left.as_ref() {
            cur = left;
        }
        Some(&cur.key)
    }

    /// Largest key.
    pub fn max(&self) -> Option<&T> {
        let mut cur = self.root.as_ref()?;
        while let Some(right) = cur.right.as_ref() {
            cur = right;
        }
        Some(&cur.key)
    }

    /// In-order (sorted) iterator over the keys.
    pub fn iter(&self) -> Iter<'_, T> {
        let mut stack = Vec::new();
        push_left(&self.root, &mut stack);
        Iter { stack }
    }

    /// Verify heap order on priorities, BST order on keys, and size
    /// bookkeeping. Test helper; O(n).
    pub fn check_invariants(&self) -> bool {
        fn check<T: Ord>(link: &Link<T>) -> Option<usize> {
            let node = match link {
                None => return Some(0),
                Some(n) => n,
            };
            let ls = check(&node.left)?;
            let rs = check(&node.right)?;
            if let Some(l) = node.left.as_ref() {
                if l.key >= node.key || l.priority > node.priority {
                    return None;
                }
            }
            if let Some(r) = node.right.as_ref() {
                if r.key <= node.key || r.priority > node.priority {
                    return None;
                }
            }
            if node.size != ls + rs + 1 {
                return None;
            }
            Some(node.size)
        }
        check(&self.root).is_some()
    }
}

impl<T: Ord> FromIterator<T> for Treap<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut t = Treap::new();
        for k in iter {
            t.insert(k);
        }
        t
    }
}

/// Sorted iterator over treap keys.
pub struct Iter<'a, T> {
    stack: Vec<&'a Node<T>>,
}

fn push_left<'a, T>(mut link: &'a Link<T>, stack: &mut Vec<&'a Node<T>>) {
    while let Some(node) = link {
        stack.push(node);
        link = &node.left;
    }
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let node = self.stack.pop()?;
        push_left(&node.right, &mut self.stack);
        Some(&node.key)
    }
}

fn insert_node<T: Ord>(link: Link<T>, mut new: Box<Node<T>>) -> Link<T> {
    match link {
        None => Some(new),
        Some(mut node) => {
            if new.priority > node.priority {
                let (l, r) = split_link(Some(node), &new.key);
                new.left = l;
                new.right = r;
                new.update();
                Some(new)
            } else {
                if new.key < node.key {
                    node.left = insert_node(node.left.take(), new);
                } else {
                    node.right = insert_node(node.right.take(), new);
                }
                node.update();
                Some(node)
            }
        }
    }
}

fn remove_node<T: Ord>(link: Link<T>, key: &T) -> (Link<T>, bool) {
    match link {
        None => (None, false),
        Some(mut node) => match key.cmp(&node.key) {
            Ordering::Less => {
                let (l, removed) = remove_node(node.left.take(), key);
                node.left = l;
                node.update();
                (Some(node), removed)
            }
            Ordering::Greater => {
                let (r, removed) = remove_node(node.right.take(), key);
                node.right = r;
                node.update();
                (Some(node), removed)
            }
            Ordering::Equal => (merge(node.left.take(), node.right.take()), true),
        },
    }
}

/// Split into keys `< key` and keys `>= key`.
fn split_link<T: Ord>(link: Link<T>, key: &T) -> (Link<T>, Link<T>) {
    match link {
        None => (None, None),
        Some(mut node) => {
            if node.key < *key {
                let (l, r) = split_link(node.right.take(), key);
                node.right = l;
                node.update();
                (Some(node), r)
            } else {
                let (l, r) = split_link(node.left.take(), key);
                node.left = r;
                node.update();
                (l, Some(node))
            }
        }
    }
}

fn merge<T: Ord>(a: Link<T>, b: Link<T>) -> Link<T> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut x), Some(mut y)) => {
            if x.priority >= y.priority {
                x.right = merge(x.right.take(), Some(y));
                x.update();
                Some(x)
            } else {
                y.left = merge(Some(x), y.left.take());
                y.update();
                Some(y)
            }
        }
    }
}

/// Treap union: the higher-priority root stays on top, the other treap is
/// split around it, and the halves are united recursively.
fn union_link<T: Ord>(a: Link<T>, b: Link<T>) -> Link<T> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(x), Some(y)) => {
            let (mut root, other) = if x.priority >= y.priority {
                (x, Some(y))
            } else {
                (y, Some(x))
            };
            let (ol, or) = split_link(other, &root.key);
            let (_dup, or) = split_off_min_eq(or, &root.key);
            root.left = union_link(root.left.take(), ol);
            root.right = union_link(root.right.take(), or);
            root.update();
            Some(root)
        }
    }
}

fn intersect_link<T: Ord>(a: Link<T>, b: Link<T>) -> Link<T> {
    match (a, b) {
        (None, _) | (_, None) => None,
        (Some(mut x), b) => {
            let (bl, br) = split_link(b, &x.key);
            // Does b contain x.key? br holds keys >= x.key.
            let (b_eq, br) = split_off_min_eq(br, &x.key);
            let il = intersect_link(x.left.take(), bl);
            let ir = intersect_link(x.right.take(), br);
            if b_eq {
                x.left = il;
                x.right = ir;
                x.update();
                Some(x)
            } else {
                merge(il, ir)
            }
        }
    }
}

/// If the minimum of `link` equals `key`, drop it and report `true`.
fn split_off_min_eq<T: Ord>(link: Link<T>, key: &T) -> (bool, Link<T>) {
    match link {
        None => (false, None),
        Some(mut node) => {
            if node.left.is_none() {
                if node.key == *key {
                    (true, node.right.take())
                } else {
                    (false, Some(node))
                }
            } else {
                let (found, l) = split_off_min_eq(node.left.take(), key);
                node.left = l;
                node.update();
                (found, Some(node))
            }
        }
    }
}

fn diff_link<T: Ord>(a: Link<T>, b: Link<T>) -> Link<T> {
    match (a, b) {
        (a, None) => a,
        (None, _) => None,
        (a, Some(mut y)) => {
            let (al, ar) = split_link(a, &y.key);
            let (_, ar) = split_off_min_eq(ar, &y.key);
            let dl = diff_link(al, y.left.take());
            let dr = diff_link(ar, y.right.take());
            merge(dl, dr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut t = Treap::with_seed(42);
        assert!(t.insert(5));
        assert!(t.insert(3));
        assert!(t.insert(8));
        assert!(!t.insert(5));
        assert_eq!(t.len(), 3);
        assert!(t.contains(&3));
        assert!(!t.contains(&4));
        assert!(t.remove(&3));
        assert!(!t.remove(&3));
        assert_eq!(t.len(), 2);
        assert!(t.check_invariants());
    }

    #[test]
    fn sorted_iteration() {
        let t: Treap<i32> = [5, 1, 4, 2, 3].into_iter().collect();
        let v: Vec<i32> = t.iter().copied().collect();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn min_max() {
        let t: Treap<i32> = [7, 2, 9].into_iter().collect();
        assert_eq!(t.min(), Some(&2));
        assert_eq!(t.max(), Some(&9));
        let empty: Treap<i32> = Treap::new();
        assert_eq!(empty.min(), None);
    }

    #[test]
    fn split_and_join() {
        let t: Treap<i32> = (0..100).collect();
        let (lo, hi) = t.split(&50);
        assert_eq!(lo.len(), 50);
        assert_eq!(hi.len(), 50);
        assert!(lo.iter().all(|&k| k < 50));
        assert!(hi.iter().all(|&k| k >= 50));
        assert!(lo.check_invariants() && hi.check_invariants());
        let joined = lo.join(hi);
        assert_eq!(joined.len(), 100);
        assert!(joined.check_invariants());
    }

    #[test]
    fn union_merges_and_dedups() {
        let a: Treap<i32> = (0..50).collect();
        let b: Treap<i32> = (25..75).collect();
        let u = a.union(b);
        assert_eq!(u.len(), 75);
        let v: Vec<i32> = u.iter().copied().collect();
        assert_eq!(v, (0..75).collect::<Vec<_>>());
        assert!(u.check_invariants());
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a: Treap<i32> = (0..10).collect();
        let e: Treap<i32> = Treap::new();
        let u = a.union(e);
        assert_eq!(u.len(), 10);
        let e2: Treap<i32> = Treap::new();
        let u2 = e2.union(u);
        assert_eq!(u2.len(), 10);
    }

    #[test]
    fn intersection_of_overlapping_ranges() {
        let a: Treap<i32> = (0..60).collect();
        let b: Treap<i32> = (40..100).collect();
        let i = a.intersection(b);
        let v: Vec<i32> = i.iter().copied().collect();
        assert_eq!(v, (40..60).collect::<Vec<_>>());
        assert!(i.check_invariants());
    }

    #[test]
    fn difference_removes_common_keys() {
        let a: Treap<i32> = (0..10).collect();
        let b: Treap<i32> = (5..15).collect();
        let d = a.difference(b);
        let v: Vec<i32> = d.iter().copied().collect();
        assert_eq!(v, (0..5).collect::<Vec<_>>());
        assert!(d.check_invariants());
    }

    #[test]
    fn large_randomish_workload_stays_balancedish() {
        let mut t = Treap::with_seed(7);
        for i in 0..10_000 {
            t.insert((i * 2_654_435_761u64) % 65_536);
        }
        assert!(t.check_invariants());
        // Expected depth is O(log n); sanity-check via iteration length.
        let len = t.len();
        assert!(len > 9_000, "hash collisions should be rare, got {len}");
        for i in 0..5_000 {
            t.remove(&((i * 2_654_435_761u64) % 65_536));
        }
        assert!(t.check_invariants());
    }
}
