//! Property-based tests for the representation layer.

use proptest::prelude::*;
use snap_graph::{
    DynGraph, EdgeOp, FilteredGraph, Graph, GraphBuilder, StreamingGraph, Treap, VertexId,
};
use std::collections::{BTreeSet, HashSet};

/// Strategy: a random undirected edge list over `n <= 24` vertices.
fn edge_list() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..64);
        (Just(n), edges)
    })
}

proptest! {
    /// CSR construction: arcs are consistent, adjacencies sorted, degrees
    /// sum to the arc count, and both arcs of an edge share an id.
    #[test]
    fn csr_invariants((n, edges) in edge_list()) {
        let g = GraphBuilder::undirected(n).add_edges(edges).build();
        g.validate().unwrap();
        prop_assert_eq!(g.total_degree(), g.num_arcs());
        for v in g.vertices() {
            let ns = g.neighbor_slice(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        }
    }

    /// Treap behaves exactly like a BTreeSet model under a random
    /// insert/remove/contains workload.
    #[test]
    fn treap_matches_btreeset(ops in prop::collection::vec((0u8..3, 0u16..64), 1..200)) {
        let mut treap = Treap::with_seed(99);
        let mut model = BTreeSet::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(treap.insert(key), model.insert(key)),
                1 => prop_assert_eq!(treap.remove(&key), model.remove(&key)),
                _ => prop_assert_eq!(treap.contains(&key), model.contains(&key)),
            }
            prop_assert_eq!(treap.len(), model.len());
        }
        prop_assert!(treap.check_invariants());
        let a: Vec<u16> = treap.iter().copied().collect();
        let b: Vec<u16> = model.iter().copied().collect();
        prop_assert_eq!(a, b);
    }

    /// Treap set algebra agrees with BTreeSet set algebra.
    #[test]
    fn treap_set_ops_match_model(
        xs in prop::collection::btree_set(0u16..64, 0..40),
        ys in prop::collection::btree_set(0u16..64, 0..40),
    ) {
        let tx: Treap<u16> = xs.iter().copied().collect();
        let ty: Treap<u16> = ys.iter().copied().collect();
        let union: Vec<u16> = tx.clone().union(ty.clone()).iter().copied().collect();
        let inter: Vec<u16> = tx.clone().intersection(ty.clone()).iter().copied().collect();
        let diff: Vec<u16> = tx.difference(ty).iter().copied().collect();
        prop_assert_eq!(union, xs.union(&ys).copied().collect::<Vec<_>>());
        prop_assert_eq!(inter, xs.intersection(&ys).copied().collect::<Vec<_>>());
        prop_assert_eq!(diff, xs.difference(&ys).copied().collect::<Vec<_>>());
    }

    /// DynGraph round-trips through CSR with identical adjacency sets, at
    /// every treap threshold.
    #[test]
    fn dyngraph_csr_roundtrip((n, edges) in edge_list(), threshold in 0usize..16) {
        let g = GraphBuilder::undirected(n).add_edges(edges).build();
        let mut d = DynGraph::with_threshold(n, threshold);
        for (_, u, v) in g.edges() {
            d.insert_edge(u, v);
        }
        prop_assert_eq!(d.num_edges(), g.num_edges());
        let back = d.to_csr();
        for v in g.vertices() {
            let mut a: Vec<_> = g.neighbors(v).collect();
            let mut b: Vec<_> = back.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    /// Deleting then restoring every edge of a FilteredGraph returns it to
    /// the pristine state.
    #[test]
    fn filtered_delete_restore_is_identity((n, edges) in edge_list()) {
        let g = GraphBuilder::undirected(n).add_edges(edges).build();
        let mut f = FilteredGraph::new(&g);
        let ids: Vec<_> = f.live_edge_ids().collect();
        for &e in &ids {
            prop_assert!(f.delete_edge(e));
        }
        prop_assert_eq!(f.num_edges(), 0);
        for v in g.vertices() {
            prop_assert_eq!(f.degree(v), 0);
        }
        for &e in &ids {
            prop_assert!(f.restore_edge(e));
        }
        prop_assert_eq!(f.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(f.degree(v), g.degree(v));
            let a: Vec<_> = f.neighbors(v).collect();
            let b: Vec<_> = g.neighbors(v).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// DynGraph::has_edge agrees with an edge-set model under random
    /// insertions and deletions.
    #[test]
    fn dyngraph_matches_model(
        ops in prop::collection::vec((0u8..2, 0u32..12, 0u32..12), 1..100),
        threshold in 0usize..8,
    ) {
        let mut g = DynGraph::with_threshold(12, threshold);
        let mut model: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (op, u, v) in ops {
            let key = (u.min(v), u.max(v));
            if op == 0 {
                let inserted = g.insert_edge(u, v);
                let model_inserted = u != v && model.insert(key);
                prop_assert_eq!(inserted, model_inserted);
            } else {
                prop_assert_eq!(g.delete_edge(u, v), model.remove(&key));
            }
            prop_assert_eq!(g.num_edges(), model.len());
        }
        for u in 0..12u32 {
            for v in 0..12u32 {
                prop_assert_eq!(g.has_edge(u, v), model.contains(&(u.min(v), u.max(v))));
            }
        }
    }
    /// DynGraph agrees with a `HashSet<(u, v)>` model on *every* observable
    /// (`has_edge`, `degree`, `num_edges`) at the degenerate thresholds:
    /// 0 (all treaps, immediate promotion), 4 (both representations and
    /// the demotion hysteresis in play), and `usize::MAX` (all arrays,
    /// never promotes).
    #[test]
    fn dyngraph_observables_match_hashset_model(
        ops in prop::collection::vec((0u8..2, 0u32..10, 0u32..10), 1..160),
        threshold_pick in 0usize..3,
    ) {
        let n = 10u32;
        let threshold = [0, 4, usize::MAX][threshold_pick];
        let mut g = DynGraph::with_threshold(n as usize, threshold);
        let mut model: HashSet<(u32, u32)> = HashSet::new();
        for &(op, u, v) in &ops {
            let key = (u.min(v), u.max(v));
            if op == 0 {
                prop_assert_eq!(g.insert_edge(u, v), u != v && model.insert(key));
            } else {
                prop_assert_eq!(g.delete_edge(u, v), model.remove(&key));
            }
            prop_assert_eq!(g.num_edges(), model.len());
        }
        for u in 0..n {
            let degree = model.iter().filter(|&&(a, b)| a == u || b == u).count();
            prop_assert_eq!(g.degree(u), degree, "degree of {}", u);
            for v in 0..n {
                prop_assert_eq!(g.has_edge(u, v), model.contains(&(u.min(v), u.max(v))));
            }
        }
    }

    /// Every snapshot the streaming engine publishes via delta-merge is
    /// identical to a from-scratch rebuild of the live graph, and epochs
    /// only move forward.
    #[test]
    fn stream_snapshots_match_full_rebuild(
        ops in prop::collection::vec((0u8..2, 0u32..10, 0u32..10), 1..120),
        batch in 1usize..24,
    ) {
        let mut sg = StreamingGraph::new(0);
        let mut last_epoch = 0;
        for chunk in ops.chunks(batch) {
            let edge_ops: Vec<EdgeOp> = chunk
                .iter()
                .map(|&(op, u, v)| if op == 0 { EdgeOp::Insert(u, v) } else { EdgeOp::Delete(u, v) })
                .collect();
            sg.apply_batch(&edge_ops);
            let snap = sg.merge();
            snap.graph.validate().unwrap();
            prop_assert!(snap.epoch >= last_epoch, "epochs are monotone");
            last_epoch = snap.epoch;
            let rebuilt = sg.live().to_csr();
            prop_assert_eq!(snap.graph.num_vertices(), rebuilt.num_vertices());
            prop_assert_eq!(snap.graph.num_edges(), rebuilt.num_edges());
            for v in rebuilt.vertices() {
                let a: Vec<_> = snap.graph.neighbor_slice(v).to_vec();
                let mut b: Vec<_> = rebuilt.neighbors(v).collect();
                b.sort_unstable();
                prop_assert_eq!(a, b, "adjacency of {} at epoch {}", v, snap.epoch);
            }
        }
    }
}

proptest! {
    /// The edge-id contract: `edge_ids()` yields exactly `num_edges()`
    /// live ids, all below `edge_id_bound()`, for both the dense CSR
    /// representation and a filtered view with random deletions.
    #[test]
    fn edge_ids_count_matches_num_edges(
        (n, edges) in edge_list(),
        dels in prop::collection::vec(0usize..64, 0..32),
    ) {
        let g = GraphBuilder::undirected(n).add_edges(edges).build();
        prop_assert_eq!(g.edge_ids().count(), g.num_edges());
        prop_assert!(g.edge_ids().all(|e| (e as usize) < g.edge_id_bound()));

        let mut view = FilteredGraph::new(&g);
        for d in dels {
            if g.num_edges() > 0 {
                view.delete_edge((d % g.num_edges()) as u32);
            }
        }
        prop_assert_eq!(view.edge_ids().count(), view.num_edges());
        prop_assert!(view.edge_ids().all(|e| view.is_live(e)));
        prop_assert!(view.edge_ids().all(|e| (e as usize) < view.edge_id_bound()));

        // The rebuilt graph compacts ids but keeps the live count.
        let rebuilt = view.rebuild();
        prop_assert_eq!(rebuilt.num_edges(), view.num_edges());
        prop_assert_eq!(rebuilt.edge_ids().count(), view.edge_ids().count());
    }
}

use snap_graph::compressed::codec;
use snap_graph::CompressedCsrGraph;

proptest! {
    /// The compressed backend is observationally identical to the
    /// `CsrGraph` it was built from — counts, degrees, sorted adjacency
    /// with edge ids, endpoints, and the edge-id contract — at every
    /// hub-threshold regime (0 = everything raw, small = mixed,
    /// `usize::MAX` = everything delta/varint).
    #[test]
    fn compressed_matches_csr((n, edges) in edge_list(), threshold_pick in 0usize..3) {
        let g = GraphBuilder::undirected(n).add_edges(edges).build();
        let threshold = [0, 4, usize::MAX][threshold_pick];
        let c = snap_graph::compressed::CompressedCsrGraph::from_csr_with_threshold(&g, threshold);
        c.validate().unwrap();
        prop_assert_eq!(c.num_vertices(), g.num_vertices());
        prop_assert_eq!(c.num_edges(), g.num_edges());
        prop_assert_eq!(c.num_arcs(), g.num_arcs());
        prop_assert_eq!(c.is_directed(), g.is_directed());
        for v in g.vertices() {
            prop_assert_eq!(c.degree(v), g.degree(v));
            let a: Vec<_> = g.neighbors_with_eid(v).collect();
            let b: Vec<_> = c.neighbors_with_eid(v).collect();
            prop_assert_eq!(a, b, "adjacency of {}", v);
        }
        for e in g.edge_ids() {
            prop_assert_eq!(c.edge_endpoints(e), g.edge_endpoints(e));
        }
        prop_assert_eq!(c.edge_ids().count(), c.num_edges());
        prop_assert!(c.edge_ids().all(|e| (e as usize) < c.edge_id_bound()));
        prop_assert_eq!(c.edge_ids().collect::<Vec<_>>(), g.edge_ids().collect::<Vec<_>>());
    }

    /// A `FilteredGraph` view over the compressed backend behaves
    /// identically to one over the flat CSR under the same deletions.
    #[test]
    fn filtered_over_compressed_matches_csr(
        (n, edges) in edge_list(),
        dels in prop::collection::vec(0usize..64, 0..32),
    ) {
        let g = GraphBuilder::undirected(n).add_edges(edges).build();
        let c = CompressedCsrGraph::from_csr(&g);
        let mut fg = FilteredGraph::new(&g);
        let mut fc = FilteredGraph::new(&c);
        for d in dels {
            if g.num_edges() > 0 {
                let e = (d % g.num_edges()) as u32;
                prop_assert_eq!(fg.delete_edge(e), fc.delete_edge(e));
            }
        }
        prop_assert_eq!(fc.num_edges(), fg.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(fc.degree(v), fg.degree(v));
            let a: Vec<_> = fg.neighbors(v).collect();
            let b: Vec<_> = fc.neighbors(v).collect();
            prop_assert_eq!(a, b, "filtered adjacency of {}", v);
        }
        let a: Vec<_> = fg.edge_ids().collect();
        let b: Vec<_> = fc.edge_ids().collect();
        prop_assert_eq!(a, b);
    }

    /// varint round-trips arbitrary u64s (plus 0, u32::MAX, u64::MAX)
    /// and zig-zag round-trips arbitrary i64s.
    #[test]
    fn varint_zigzag_round_trip(
        xs in prop::collection::vec(0u64..u64::MAX, 1..64),
        s in i64::MIN..i64::MAX,
    ) {
        let mut buf = Vec::new();
        for &x in xs.iter().chain(&[0, u64::from(u32::MAX), u64::MAX]) {
            buf.clear();
            codec::write_varint(&mut buf, x);
            let mut pos = 0;
            prop_assert_eq!(codec::read_varint(&buf, &mut pos), x);
            prop_assert_eq!(pos, buf.len());
        }
        prop_assert_eq!(codec::unzigzag(codec::zigzag(s)), s);
        prop_assert_eq!(codec::unzigzag(codec::zigzag(i64::MIN)), i64::MIN);
        prop_assert_eq!(codec::unzigzag(codec::zigzag(i64::MAX)), i64::MAX);
    }

    /// `encode_sorted`/`decode_sorted` are inverses on sorted
    /// duplicate-free lists — including lists ending in `u32::MAX` —
    /// and encoding rejects gap-0 (a parallel edge) and unsorted input.
    #[test]
    fn adjacency_codec_round_trips(
        v in 0u32..1000,
        set in prop::collection::btree_set(0u32..u32::MAX, 0..64),
    ) {
        let mut neighbors: Vec<u32> = set.into_iter().collect();
        let mut buf = Vec::new();
        codec::encode_sorted(v, &neighbors, &mut buf).unwrap();
        let mut pos = 0;
        prop_assert_eq!(codec::decode_sorted(v, &buf, &mut pos), neighbors.clone());
        prop_assert_eq!(pos, buf.len());

        neighbors.push(u32::MAX);
        buf.clear();
        codec::encode_sorted(v, &neighbors, &mut buf).unwrap();
        let mut pos = 0;
        prop_assert_eq!(codec::decode_sorted(v, &buf, &mut pos), neighbors.clone());

        let first = neighbors[0];
        prop_assert!(codec::encode_sorted(v, &[first, first], &mut Vec::new()).is_err());
        if neighbors.len() >= 2 && neighbors[0] != neighbors[neighbors.len() - 1] {
            let mut rev = neighbors.clone();
            rev.reverse();
            prop_assert!(codec::encode_sorted(v, &rev, &mut Vec::new()).is_err());
        }
    }
}
