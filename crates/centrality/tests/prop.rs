//! Property tests for centrality invariants.

use proptest::prelude::*;
use snap_centrality::*;
use snap_graph::{Graph, GraphBuilder, VertexId};
use snap_kernels::bfs::{bfs, UNREACHABLE};

fn arb_graph() -> impl Strategy<Value = snap_graph::CsrGraph> {
    (3usize..20).prop_flat_map(|n| {
        prop::collection::vec((0..n as u32, 0..n as u32), 1..50).prop_map(move |edges| {
            let mut uniq: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(u, v)| (u.min(v), u.max(v)))
                .collect();
            uniq.sort_unstable();
            uniq.dedup();
            GraphBuilder::undirected(n).add_edges(uniq).build()
        })
    })
}

proptest! {
    /// Brute-force betweenness on tiny graphs equals Brandes: the sum of
    /// vertex BC must equal Σ over pairs of (interior vertices weighted
    /// by path share), checked via the Σ(d(s,t) - 1) identity on graphs
    /// where all shortest paths are unique is too restrictive, so check
    /// the weaker (but exact) identity:
    ///   Σ_v BC(v) + (#connected ordered pairs)/2 = Σ_e edgeBC(e).
    /// Every s-t shortest path of length ℓ contributes ℓ to edge BC and
    /// ℓ-1 to vertex BC (shares sum to 1 per pair per "slot").
    #[test]
    fn vertex_edge_bc_identity(g in arb_graph()) {
        let bc = brandes(&g);
        let vertex_sum: f64 = bc.vertex.iter().sum();
        let edge_sum: f64 = bc.edge.iter().sum();
        // Count connected unordered pairs.
        let mut pairs = 0u64;
        for s in 0..g.num_vertices() as VertexId {
            let d = bfs(&g, s);
            for t in 0..g.num_vertices() {
                if (t as u32) > s && d.dist[t] != UNREACHABLE {
                    pairs += 1;
                }
            }
        }
        prop_assert!(
            (vertex_sum + pairs as f64 - edge_sum).abs() < 1e-6,
            "vertex {vertex_sum} + pairs {pairs} != edge {edge_sum}"
        );
    }

    /// Betweenness is nonnegative and zero on degree-<2 vertices' paths
    /// cannot pass through leaves.
    #[test]
    fn bc_nonnegative_and_leaf_zero(g in arb_graph()) {
        let bc = brandes(&g);
        for v in 0..g.num_vertices() {
            prop_assert!(bc.vertex[v] >= -1e-12);
            if g.degree(v as VertexId) <= 1 {
                prop_assert!(bc.vertex[v].abs() < 1e-12, "leaf {v} has bc {}", bc.vertex[v]);
            }
        }
        for e in g.edge_ids() {
            prop_assert!(bc.edge[e as usize] >= -1e-12);
        }
    }

    /// The sampled estimator with a full sample is exact; parallel equals
    /// sequential.
    #[test]
    fn full_sample_and_parallel_agree(g in arb_graph()) {
        let exact = brandes(&g);
        let par = par_brandes(&g);
        let full = approx_betweenness(&g, 1.0, 5);
        for v in 0..g.num_vertices() {
            prop_assert!((exact.vertex[v] - par.vertex[v]).abs() < 1e-7);
            prop_assert!((exact.vertex[v] - full.vertex[v]).abs() < 1e-7);
        }
    }

    /// Closeness lies in [0, 1] with the Wasserman-Faust correction.
    #[test]
    fn closeness_bounded(g in arb_graph()) {
        for c in closeness(&g) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c), "closeness {c}");
        }
    }

    /// Degree centrality sums to twice the edge count.
    #[test]
    fn degree_sum_identity(g in arb_graph()) {
        let total: usize = degree_centrality(&g).iter().sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }
}
