//! Weighted betweenness centrality (Brandes over Dijkstra).
//!
//! The paper's algorithm statements carry a length function `l: E → R`;
//! this module supplies the weighted counterpart of the BFS-based kernel:
//! shortest paths by weight, dependency accumulation in non-increasing
//! distance order (Dijkstra settle order reversed).

use crate::brandes::BetweennessScores;
use rayon::prelude::*;
use snap_graph::{VertexId, WeightedGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One weighted-Brandes accumulation from `s`.
fn accumulate_weighted<G: WeightedGraph>(g: &G, s: VertexId, vacc: &mut [f64], eacc: &mut [f64]) {
    let n = g.num_vertices();
    let mut dist = vec![u64::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); n];
    let mut order: Vec<VertexId> = Vec::new();
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[s as usize] = 0;
    sigma[s as usize] = 1.0;
    heap.push(Reverse((0u64, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        order.push(u);
        for (v, e, w) in g.neighbors_weighted(u) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                sigma[v as usize] = sigma[u as usize];
                preds[v as usize].clear();
                preds[v as usize].push((u, e));
                heap.push(Reverse((nd, v)));
            } else if nd == dist[v as usize] {
                sigma[v as usize] += sigma[u as usize];
                preds[v as usize].push((u, e));
            }
        }
    }
    for &w in order.iter().rev() {
        let dw = delta[w as usize];
        let coeff = (1.0 + dw) / sigma[w as usize];
        for &(v, e) in &preds[w as usize] {
            let c = sigma[v as usize] * coeff;
            delta[v as usize] += c;
            eacc[e as usize] += c;
        }
        if w != s {
            vacc[w as usize] += dw;
        }
    }
}

/// Exact weighted betweenness (vertices and edges), parallel over
/// sources. For unweighted graphs this equals [`crate::brandes::brandes`]
/// (at higher cost — prefer the BFS kernel there).
pub fn weighted_betweenness<G: WeightedGraph>(g: &G) -> BetweennessScores {
    let n = g.num_vertices();
    let m = g.edge_id_bound();
    let (vertex, edge) = (0..n as VertexId)
        .into_par_iter()
        .fold(
            || (Vec::new(), Vec::new()),
            |(mut vacc, mut eacc): (Vec<f64>, Vec<f64>), s| {
                if vacc.is_empty() {
                    vacc = vec![0.0; n];
                    eacc = vec![0.0; m];
                }
                accumulate_weighted(g, s, &mut vacc, &mut eacc);
                (vacc, eacc)
            },
        )
        .reduce(
            || (Vec::new(), Vec::new()),
            |(mut va, mut ea), (vb, eb)| {
                if va.is_empty() {
                    return (vb, eb);
                }
                if !vb.is_empty() {
                    for (x, y) in va.iter_mut().zip(vb) {
                        *x += y;
                    }
                    for (x, y) in ea.iter_mut().zip(eb) {
                        *x += y;
                    }
                }
                (va, ea)
            },
        );
    let mut vertex = if vertex.is_empty() {
        vec![0.0; n]
    } else {
        vertex
    };
    let mut edge = if edge.is_empty() { vec![0.0; m] } else { edge };
    if !g.is_directed() {
        for x in vertex.iter_mut() {
            *x *= 0.5;
        }
        for x in edge.iter_mut() {
            *x *= 0.5;
        }
    }
    BetweennessScores { vertex, edge }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::brandes;
    use snap_graph::builder::from_edges;
    use snap_graph::GraphBuilder;

    #[test]
    fn equals_bfs_brandes_on_unit_weights() {
        let g = from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        let a = brandes(&g);
        let b = weighted_betweenness(&g);
        for v in 0..8 {
            assert!((a.vertex[v] - b.vertex[v]).abs() < 1e-9, "v{v}");
        }
        for e in 0..snap_graph::Graph::num_edges(&g) {
            assert!((a.edge[e] - b.edge[e]).abs() < 1e-9, "e{e}");
        }
    }

    #[test]
    fn weights_reroute_shortest_paths() {
        // Square 0-1-2 (cheap) vs direct 0-2 (expensive): all 0↔2 paths
        // take the detour through 1.
        let g = GraphBuilder::undirected(3)
            .add_weighted_edges([(0, 1, 1), (1, 2, 1), (0, 2, 10)])
            .build();
        let bc = weighted_betweenness(&g);
        assert!((bc.vertex[1] - 1.0).abs() < 1e-12);
        // The expensive edge carries no shortest path except... not even
        // its own endpoints' pair (detour is cheaper), so its BC is 0.
        let direct = g.edges().find(|&(_, u, v)| (u, v) == (0, 2)).unwrap().0;
        assert!(bc.edge[direct as usize].abs() < 1e-12);
    }

    #[test]
    fn equal_weight_paths_split_dependency() {
        // Diamond with equal weights: two shortest 0→3 paths.
        let g = GraphBuilder::undirected(4)
            .add_weighted_edges([(0, 1, 2), (0, 2, 2), (1, 3, 2), (2, 3, 2)])
            .build();
        let bc = weighted_betweenness(&g);
        assert!((bc.vertex[1] - 0.5).abs() < 1e-12);
        assert!((bc.vertex[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_bridge_dominates() {
        let g = GraphBuilder::undirected(6)
            .add_weighted_edges([
                (0, 1, 1),
                (1, 2, 1),
                (0, 2, 1),
                (2, 3, 5),
                (3, 4, 1),
                (4, 5, 1),
                (3, 5, 1),
            ])
            .build();
        let bc = weighted_betweenness(&g);
        let (e, _) = bc.max_edge().unwrap();
        assert_eq!(snap_graph::Graph::edge_endpoints(&g, e), (2, 3));
    }
}
