//! Degree centrality — the paper's "simple local measure based on the
//! notion of neighborhood".

use rayon::prelude::*;
use snap_graph::{Graph, VertexId};

/// Raw degree of every vertex.
pub fn degree_centrality<G: Graph>(g: &G) -> Vec<usize> {
    (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .map(|v| g.degree(v))
        .collect()
}

/// Degree normalized by the maximum possible `n - 1`.
pub fn normalized_degree_centrality<G: Graph>(g: &G) -> Vec<f64> {
    let n = g.num_vertices();
    if n <= 1 {
        return vec![0.0; n];
    }
    let denom = (n - 1) as f64;
    degree_centrality(g)
        .into_iter()
        .map(|d| d as f64 / denom)
        .collect()
}

/// Vertices sorted by decreasing degree (ties by id), typically used to
/// shortlist hub candidates before a more expensive centrality pass.
pub fn top_degree_vertices<G: Graph>(g: &G, k: usize) -> Vec<(VertexId, usize)> {
    let mut all: Vec<(VertexId, usize)> = degree_centrality(g)
        .into_iter()
        .enumerate()
        .map(|(v, d)| (v as VertexId, d))
        .collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_graph::builder::from_edges;

    #[test]
    fn star_degrees() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(degree_centrality(&g), vec![4, 1, 1, 1, 1]);
        let norm = normalized_degree_centrality(&g);
        assert!((norm[0] - 1.0).abs() < 1e-12);
        assert!((norm[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn top_k_ordering() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let top = top_degree_vertices(&g, 2);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[0].1, 3);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn single_vertex() {
        let g = from_edges(1, &[]);
        assert_eq!(normalized_degree_centrality(&g), vec![0.0]);
    }
}
