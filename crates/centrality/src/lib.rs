//! # snap-centrality
//!
//! Centrality metrics of the SNAP framework (Bader & Madduri, IPDPS 2008,
//! §2.1): degree, closeness, exact betweenness (Brandes, vertices and
//! edges, with the paper's coarse-grained source-parallel scheme), and the
//! adaptive-sampling approximate betweenness (Bader, Kintali, Madduri &
//! Mihail, WAW 2007) that powers the pBD divisive clustering algorithm.

pub mod approx;
pub mod brandes;
pub mod closeness;
pub mod degree;
pub mod weighted;

pub use approx::{
    adaptive_edge_betweenness, adaptive_vertex_betweenness, approx_betweenness,
    approx_betweenness_with_budget, approx_betweenness_with_budget_and_workspace,
    approx_betweenness_with_workspace, sample_sources, AdaptiveEstimate,
};
pub use brandes::{
    betweenness_from_sources, betweenness_from_sources_with_workspace, brandes, par_brandes,
    par_brandes_with_workspace, try_betweenness_from_sources,
    try_betweenness_from_sources_with_workspace, BetweennessScores, PartialBetweenness,
};
pub use closeness::{
    closeness, closeness_of, closeness_of_with_workspace, closeness_with_workspace,
    sampled_closeness, sampled_closeness_with_workspace,
};
pub use degree::{degree_centrality, normalized_degree_centrality, top_degree_vertices};
pub use weighted::weighted_betweenness;
