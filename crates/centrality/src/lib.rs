//! # snap-centrality
//!
//! Centrality metrics of the SNAP framework (Bader & Madduri, IPDPS 2008,
//! §2.1): degree, closeness, exact betweenness (Brandes, vertices and
//! edges, with the paper's coarse-grained source-parallel scheme), and the
//! adaptive-sampling approximate betweenness (Bader, Kintali, Madduri &
//! Mihail, WAW 2007) that powers the pBD divisive clustering algorithm.

pub mod approx;
pub mod brandes;
pub mod closeness;
pub mod degree;
pub mod weighted;

pub use approx::{
    adaptive_edge_betweenness, adaptive_vertex_betweenness, approx_betweenness,
    approx_betweenness_with_budget, sample_sources, AdaptiveEstimate,
};
pub use brandes::{
    betweenness_from_sources, brandes, par_brandes, try_betweenness_from_sources,
    BetweennessScores, PartialBetweenness,
};
pub use closeness::{closeness, closeness_of, sampled_closeness};
pub use degree::{degree_centrality, normalized_degree_centrality, top_degree_vertices};
pub use weighted::weighted_betweenness;
