//! Approximate betweenness centrality by source sampling, including the
//! adaptive-sampling estimator of Bader, Kintali, Madduri & Mihail
//! (WAW 2007) that the paper's pBD algorithm is built on.
//!
//! The paper's empirical finding: sampling ~5% of the vertices estimates
//! the betweenness of the top-1% entities within ~20% error. The fixed-
//! fraction estimator below is the pBD workhorse; the adaptive variant
//! stops early once the accumulated dependency of the target entity
//! crosses `alpha * n`, spending fewer traversals on high-centrality
//! targets (exactly the entities pBD cares about).

use crate::brandes::{
    accumulate_source, try_betweenness_from_sources_with_workspace, BetweennessScores,
    PartialBetweenness,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use snap_budget::Budget;
use snap_graph::{Graph, TraversalWorkspace, VertexId, WorkspacePool};

/// Estimate vertex and edge betweenness from a random `frac` fraction of
/// sources (at least one). Unbiased; variance shrinks with `frac`.
/// Parallel over the sampled sources.
pub fn approx_betweenness<G: Graph>(g: &G, frac: f64, seed: u64) -> BetweennessScores {
    approx_betweenness_with_workspace(g, frac, seed, &WorkspacePool::new())
}

/// [`approx_betweenness`] drawing traversal scratch from `pool`.
pub fn approx_betweenness_with_workspace<G: Graph>(
    g: &G,
    frac: f64,
    seed: u64,
    pool: &WorkspacePool,
) -> BetweennessScores {
    let _span = snap_obs::span("centrality.approx_betweenness");
    let n = g.num_vertices();
    if n == 0 {
        return BetweennessScores {
            vertex: Vec::new(),
            edge: Vec::new(),
        };
    }
    let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
    snap_obs::add("samples_drawn", k as u64);
    snap_obs::gauge("sample_fraction", frac);
    let sources = sample_sources(n, k, seed);
    crate::brandes::betweenness_from_sources_with_workspace(g, &sources, pool)
}

/// [`approx_betweenness`] under a compute [`Budget`]: accumulates sampled
/// sources until the budget trips and rescales by the sources actually
/// processed. Because the sample order is already a uniform shuffle, the
/// processed prefix is itself a uniform sample — the estimate stays
/// unbiased, only its variance grows.
pub fn approx_betweenness_with_budget<G: Graph>(
    g: &G,
    frac: f64,
    seed: u64,
    budget: &Budget,
) -> PartialBetweenness {
    approx_betweenness_with_budget_and_workspace(g, frac, seed, budget, &WorkspacePool::new())
}

/// [`approx_betweenness_with_budget`] drawing traversal scratch from
/// `pool`. pBD holds one pool across its betweenness rounds so each
/// round's traversals reuse the previous round's slot arrays.
pub fn approx_betweenness_with_budget_and_workspace<G: Graph>(
    g: &G,
    frac: f64,
    seed: u64,
    budget: &Budget,
    pool: &WorkspacePool,
) -> PartialBetweenness {
    let _span = snap_obs::span("centrality.approx_betweenness");
    let n = g.num_vertices();
    if n == 0 {
        return PartialBetweenness {
            scores: BetweennessScores {
                vertex: Vec::new(),
                edge: Vec::new(),
            },
            sources_used: 0,
            sources_requested: 0,
        };
    }
    let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
    snap_obs::add("samples_drawn", k as u64);
    snap_obs::gauge("sample_fraction", frac);
    let sources = sample_sources(n, k, seed);
    try_betweenness_from_sources_with_workspace(g, &sources, budget, pool)
}

/// Result of the adaptive single-entity estimator.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveEstimate {
    /// Estimated betweenness of the target.
    pub estimate: f64,
    /// Number of source traversals performed.
    pub samples: usize,
}

/// Adaptively estimate the betweenness of vertex `target`: sample sources
/// until the summed dependency exceeds `alpha * n`, then extrapolate
/// (`BC ≈ n·S/k`). High-centrality vertices converge in few samples;
/// the estimator caps at a full exact pass.
pub fn adaptive_vertex_betweenness<G: Graph>(
    g: &G,
    target: VertexId,
    alpha: f64,
    seed: u64,
) -> AdaptiveEstimate {
    let n = g.num_vertices();
    let m = g.edge_id_bound();
    let sources = sample_sources(n, n, seed);
    let mut ws = TraversalWorkspace::new();
    ws.bind_preds(g);
    let mut vacc = vec![0.0; n];
    let mut eacc = vec![0.0; m];
    let threshold = alpha * n as f64;
    let mut used = 0usize;
    for &s in &sources {
        accumulate_source(g, s, &mut ws, &mut vacc, &mut eacc);
        used += 1;
        if vacc[target as usize] >= threshold {
            break;
        }
    }
    let mut est = vacc[target as usize] * n as f64 / used as f64;
    if !g.is_directed() {
        est *= 0.5;
    }
    AdaptiveEstimate {
        estimate: est,
        samples: used,
    }
}

/// Adaptively estimate the betweenness of a single edge, same stopping
/// rule as [`adaptive_vertex_betweenness`].
pub fn adaptive_edge_betweenness<G: Graph>(
    g: &G,
    target: u32,
    alpha: f64,
    seed: u64,
) -> AdaptiveEstimate {
    let n = g.num_vertices();
    let m = g.edge_id_bound();
    let sources = sample_sources(n, n, seed);
    let mut ws = TraversalWorkspace::new();
    ws.bind_preds(g);
    let mut vacc = vec![0.0; n];
    let mut eacc = vec![0.0; m];
    let threshold = alpha * n as f64;
    let mut used = 0usize;
    for &s in &sources {
        accumulate_source(g, s, &mut ws, &mut vacc, &mut eacc);
        used += 1;
        if eacc[target as usize] >= threshold {
            break;
        }
    }
    let mut est = eacc[target as usize] * n as f64 / used as f64;
    if !g.is_directed() {
        est *= 0.5;
    }
    AdaptiveEstimate {
        estimate: est,
        samples: used,
    }
}

/// Draw `k` distinct sources uniformly at random (a seeded shuffle
/// truncated to `k`) — the sampling primitive shared by the estimators
/// and by budget-degraded exact betweenness.
pub fn sample_sources(n: usize, k: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<VertexId> = (0..n as VertexId).collect();
    all.shuffle(&mut rng);
    all.truncate(k.min(n));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::brandes;
    use snap_graph::builder::from_edges;

    fn barbell() -> snap_graph::CsrGraph {
        from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn full_fraction_is_exact() {
        let g = barbell();
        let exact = brandes(&g);
        let approx = approx_betweenness(&g, 1.0, 3);
        for e in g.edge_ids() {
            assert!((exact.edge[e as usize] - approx.edge[e as usize]).abs() < 1e-7);
        }
    }

    #[test]
    fn half_fraction_finds_the_bridge() {
        let g = barbell();
        let approx = approx_betweenness(&g, 0.5, 11);
        let (e, _) = approx.max_edge().unwrap();
        assert_eq!(g.edge_endpoints(e), (2, 3));
    }

    #[test]
    fn adaptive_estimates_star_center() {
        let g = from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (0, 7),
                (0, 8),
            ],
        );
        let exact = brandes(&g).vertex[0]; // C(8,2) = 28
        assert!((exact - 28.0).abs() < 1e-9);
        let est = adaptive_vertex_betweenness(&g, 0, 0.5, 7);
        // High-centrality vertex: few samples, decent estimate.
        assert!(est.samples <= 9);
        assert!(
            (est.estimate - exact).abs() <= 0.5 * exact,
            "estimate {} vs exact {exact}",
            est.estimate
        );
    }

    #[test]
    fn adaptive_uses_fewer_samples_for_hubs() {
        let g = barbell();
        let hub = adaptive_vertex_betweenness(&g, 2, 0.5, 5);
        let leaf = adaptive_vertex_betweenness(&g, 0, 0.5, 5);
        assert!(hub.samples <= leaf.samples);
    }

    #[test]
    fn adaptive_edge_finds_bridge_weight() {
        let g = barbell();
        let exact = brandes(&g);
        let bridge = exact.max_edge().unwrap().0;
        let est = adaptive_edge_betweenness(&g, bridge, 0.5, 13);
        assert!(est.estimate > 0.5 * exact.edge[bridge as usize]);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = barbell();
        let a = approx_betweenness(&g, 0.5, 42);
        let b = approx_betweenness(&g, 0.5, 42);
        assert_eq!(a.edge, b.edge);
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(0, &[]);
        let bc = approx_betweenness(&g, 0.1, 0);
        assert!(bc.vertex.is_empty());
    }
}
