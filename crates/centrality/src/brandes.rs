//! Exact betweenness centrality (Brandes, J. Math. Sociol. 2001), for
//! vertices and edges simultaneously.
//!
//! The paper's exact kernel is `O(mn)` work: one BFS-like dependency
//! accumulation per source. SNAP's *coarse-grained* parallelization
//! distributes the `n` source traversals over workers, each with private
//! accumulators that are summed at the end — `O(p(m + n))` memory, no
//! fine-grained synchronization on the hot path. This module implements
//! the sequential kernel and that coarse-grained parallel scheme.

use rayon::prelude::*;
use snap_budget::Budget;
use snap_graph::scratch::{stamped, BrandesSlot, PredArc};
use snap_graph::{Graph, TraversalWorkspace, VertexId, WorkspacePool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Betweenness scores for all vertices and edges.
///
/// For undirected graphs each unordered pair is counted once (the raw
/// two-directional Brandes sums are halved), matching the textbook
/// definition `BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st`.
#[derive(Clone, Debug)]
pub struct BetweennessScores {
    /// Per-vertex betweenness.
    pub vertex: Vec<f64>,
    /// Per-edge betweenness (indexed by edge id).
    pub edge: Vec<f64>,
}

impl BetweennessScores {
    /// Edge id with the maximum betweenness (ties → smallest id).
    pub fn max_edge(&self) -> Option<(u32, f64)> {
        self.edge
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(e, &s)| (e as u32, s))
    }

    /// Vertex id with the maximum betweenness (ties → smallest id).
    pub fn max_vertex(&self) -> Option<(VertexId, f64)> {
        self.vertex
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(v, &s)| (v as VertexId, s))
    }
}

/// One Brandes accumulation from `s`: adds the dependencies of all
/// shortest paths out of `s` into `vacc` (vertices) and `eacc` (edges).
///
/// `ws` must have its predecessor buffer bound to `g` (see
/// [`TraversalWorkspace::bind_preds`]) — callers bind once per kernel
/// call, then run every source through the same workspace. Clearing
/// between sources is the epoch bump inside [`TraversalWorkspace::begin`];
/// no per-source allocation or `O(n)` reset happens here.
pub(crate) fn accumulate_source<G: Graph>(
    g: &G,
    s: VertexId,
    ws: &mut TraversalWorkspace,
    vacc: &mut [f64],
    eacc: &mut [f64],
) {
    let tag = ws.begin(g.num_vertices());
    let snap_graph::scratch::Slots {
        dist,
        bslot: slot,
        order,
        pred,
        ..
    } = ws.slots();

    let si = s as usize;
    dist[si] = tag; // distance 0
    slot[si].sigma = 1.0;
    slot[si].delta = 0.0;
    slot[si].pred_end = slot[si].pred_off;
    // The discovery-order vector doubles as the FIFO queue (`head` chases
    // the push end) — same level structure, no separate queue traffic.
    // `level_end` marks where the current BFS level ends in `order`, so
    // the expansion never re-reads dist[u]: the depth is a loop counter,
    // and a same-level shortest-path arc is a whole-word compare against
    // the precomputed next-level stamp. Every scanned arc probes the
    // dense `dist` array; only shortest-path arcs touch the packed
    // [`BrandesSlot`], where σ and the predecessor cursor share a line.
    order.push(s);
    let mut head = 0usize;
    let mut level_end = 1usize;
    let mut dnext = tag | 1;
    while head < order.len() {
        if head == level_end {
            level_end = order.len();
            dnext += 1;
        }
        let u = order[head];
        head += 1;
        // σ(u) is loop-invariant over u's adjacency: a neighbor at
        // distance du + 1 can never feed back into σ(u) mid-scan.
        let su = slot[u as usize].sigma;
        for (v, e) in g.neighbors_with_eid(u) {
            let vi = v as usize;
            let wv = dist[vi];
            if wv == dnext {
                // Already discovered at the next level: another shortest
                // path; append this arc to v's predecessor list.
                let sv = &mut slot[vi];
                sv.sigma += su;
                pred[sv.pred_end as usize] = PredArc { v: u, e };
                sv.pred_end += 1;
            } else if !stamped(wv, tag) {
                // First touch this epoch: stamp and write the slot's
                // live fields outright (σ = σ(u), first pred arc) —
                // pure stores, no read-modify-write of stale state.
                dist[vi] = dnext;
                let sv = &mut slot[vi];
                let off = sv.pred_off;
                sv.sigma = su;
                sv.delta = 0.0;
                sv.pred_end = off + 1;
                pred[off as usize] = PredArc { v: u, e };
                order.push(v);
            }
        }
    }
    // Dependency accumulation in reverse BFS order, reading each
    // vertex's predecessor arcs from the flat CSR buffer.
    for i in (0..order.len()).rev() {
        let w = order[i];
        let wi = w as usize;
        let BrandesSlot {
            sigma: sw,
            delta: dw,
            pred_off,
            pred_end,
            ..
        } = slot[wi];
        let coeff = (1.0 + dw) / sw;
        for &PredArc { v, e } in &pred[pred_off as usize..pred_end as usize] {
            let c = slot[v as usize].sigma * coeff;
            slot[v as usize].delta += c;
            eacc[e as usize] += c;
        }
        if w != s {
            vacc[wi] += dw;
        }
    }
}

fn finalize<G: Graph>(g: &G, mut vertex: Vec<f64>, mut edge: Vec<f64>) -> BetweennessScores {
    if !g.is_directed() {
        for x in vertex.iter_mut() {
            *x *= 0.5;
        }
        for x in edge.iter_mut() {
            *x *= 0.5;
        }
    }
    BetweennessScores { vertex, edge }
}

/// Exact betweenness from all sources, sequential.
pub fn brandes<G: Graph>(g: &G) -> BetweennessScores {
    let n = g.num_vertices();
    let m = g.edge_id_bound();
    let mut vertex = vec![0.0; n];
    let mut edge = vec![0.0; m];
    let mut ws = TraversalWorkspace::new();
    ws.bind_preds(g);
    for s in 0..n as VertexId {
        accumulate_source(g, s, &mut ws, &mut vertex, &mut edge);
    }
    finalize(g, vertex, edge)
}

/// Exact betweenness, coarse-grained parallel: sources are distributed
/// over the rayon pool; each worker owns private accumulators which are
/// reduced by summation (`O(p(m + n))` memory, as in the paper).
///
/// ```
/// use snap_centrality::par_brandes;
///
/// // Two triangles joined by a bridge: the bridge carries every
/// // cross-community shortest path.
/// let g = snap_graph::builder::from_edges(
///     6,
///     &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
/// );
/// let bc = par_brandes(&g);
/// let (top_edge, _) = bc.max_edge().unwrap();
/// assert_eq!(snap_graph::Graph::edge_endpoints(&g, top_edge), (2, 3));
/// ```
pub fn par_brandes<G: Graph>(g: &G) -> BetweennessScores {
    par_brandes_with_workspace(g, &WorkspacePool::new())
}

/// [`par_brandes`] drawing traversal scratch from `pool` (see
/// [`betweenness_from_sources_with_workspace`]).
pub fn par_brandes_with_workspace<G: Graph>(g: &G, pool: &WorkspacePool) -> BetweennessScores {
    betweenness_from_sources_scaled(g, None, 1.0, pool)
}

/// Betweenness accumulated from an explicit set of sources, scaled by
/// `scale` (used by the sampling-based approximations: `scale = n / k`
/// turns a k-source sample into an unbiased estimate of the full sum).
pub fn betweenness_from_sources<G: Graph>(g: &G, sources: &[VertexId]) -> BetweennessScores {
    betweenness_from_sources_with_workspace(g, sources, &WorkspacePool::new())
}

/// [`betweenness_from_sources`] drawing traversal scratch from `pool`.
/// Callers that recompute betweenness repeatedly (GN rounds, pBD
/// phases, a serving session) hold one pool across calls so every
/// traversal after the first reuses warm slot arrays.
pub fn betweenness_from_sources_with_workspace<G: Graph>(
    g: &G,
    sources: &[VertexId],
    pool: &WorkspacePool,
) -> BetweennessScores {
    let scale = if sources.is_empty() {
        1.0
    } else {
        g.num_vertices() as f64 / sources.len() as f64
    };
    betweenness_from_sources_scaled(g, Some(sources), scale, pool)
}

fn betweenness_from_sources_scaled<G: Graph>(
    g: &G,
    sources: Option<&[VertexId]>,
    scale: f64,
    pool: &WorkspacePool,
) -> BetweennessScores {
    let n = g.num_vertices();
    let all: Vec<VertexId>;
    let sources = match sources {
        Some(s) => s,
        None => {
            all = (0..n as VertexId).collect();
            &all
        }
    };
    let (vertex, edge, _) = accumulate_sources_budgeted(g, sources, &Budget::unlimited(), pool);
    let vertex = vertex.into_iter().map(|x| x * scale).collect();
    let edge = edge.into_iter().map(|x| x * scale).collect();
    finalize(g, vertex, edge)
}

/// A betweenness estimate computed from however many sources the budget
/// allowed.
#[derive(Clone, Debug)]
pub struct PartialBetweenness {
    /// The (scaled) scores. With `sources_used == sources_requested` this
    /// is exactly what the unbudgeted call would have returned.
    pub scores: BetweennessScores,
    /// Sources actually accumulated before the budget tripped.
    pub sources_used: usize,
    /// Sources the caller asked for.
    pub sources_requested: usize,
}

impl PartialBetweenness {
    /// Whether the budget cut the source loop short.
    pub fn degraded(&self) -> bool {
        self.sources_used < self.sources_requested
    }
}

/// Betweenness from an explicit source set under a compute [`Budget`].
///
/// Sources are processed until the budget trips; the accumulated sums are
/// then scaled by `n / sources_used`, turning the processed prefix into a
/// sampled estimate (pass a *shuffled* source order — e.g. from
/// [`crate::approx::sample_sources`] — so the prefix is a uniform
/// sample). With an unlimited budget this equals
/// [`betweenness_from_sources`].
pub fn try_betweenness_from_sources<G: Graph>(
    g: &G,
    sources: &[VertexId],
    budget: &Budget,
) -> PartialBetweenness {
    try_betweenness_from_sources_with_workspace(g, sources, budget, &WorkspacePool::new())
}

/// [`try_betweenness_from_sources`] drawing traversal scratch from
/// `pool` (see [`betweenness_from_sources_with_workspace`]).
pub fn try_betweenness_from_sources_with_workspace<G: Graph>(
    g: &G,
    sources: &[VertexId],
    budget: &Budget,
    pool: &WorkspacePool,
) -> PartialBetweenness {
    let (vertex, edge, used) = accumulate_sources_budgeted(g, sources, budget, pool);
    let scale = if used == 0 {
        1.0
    } else {
        g.num_vertices() as f64 / used as f64
    };
    let vertex = vertex.into_iter().map(|x| x * scale).collect();
    let edge = edge.into_iter().map(|x| x * scale).collect();
    if used < sources.len() {
        if let Some(why) = budget.exhaustion() {
            snap_obs::meta("degraded", why);
        }
        snap_obs::add("sources_skipped", (sources.len() - used) as u64);
    }
    PartialBetweenness {
        scores: finalize(g, vertex, edge),
        sources_used: used,
        sources_requested: sources.len(),
    }
}

/// Coarse-grained parallel accumulation over `sources`, skipping sources
/// once `budget` trips. Returns unscaled sums plus the number of sources
/// actually processed.
fn accumulate_sources_budgeted<G: Graph>(
    g: &G,
    sources: &[VertexId],
    budget: &Budget,
    pool: &WorkspacePool,
) -> (Vec<f64>, Vec<f64>, usize) {
    let _span = snap_obs::span("centrality.betweenness");
    let n = g.num_vertices();
    let m = g.edge_id_bound();
    // Handles are captured by the worker closures: every rayon worker
    // lands its per-source tallies in the same relaxed atomics, and the
    // per-source latency distribution merges by relaxed bucket adds.
    let sources_processed = snap_obs::counter("sources_processed");
    let frontier_vertices = snap_obs::counter("frontier_vertices");
    let source_us = snap_obs::hist("source_us");
    let processed = AtomicU64::new(0);
    // Coarse-grained fan-out: explicit multi-source chunks. A plain
    // par_iter would fall below the shim's small-input threshold for
    // short source lists (a k = 64 sample), serializing work where each
    // item is a whole graph traversal; par_chunks makes the granularity
    // the caller's call. The chunk size depends only on the source count,
    // never the thread count: per-chunk f64 accumulators reduce in chunk
    // order, so a thread-count-independent chunking keeps the floating
    // point bracketing — and therefore every downstream tie-break (pBD
    // edge ranking) — bit-identical from 1 thread to 64.
    let per = sources.len().div_ceil(64).max(16);
    let (vertex, edge) = sources
        .par_chunks(per)
        .map(|chunk| {
            let mut vacc = Vec::new();
            let mut eacc = Vec::new();
            let mut scratch = None::<snap_graph::PooledWorkspace<'_>>;
            for &s in chunk {
                // The budget gate costs one relaxed load per source; a
                // tripped budget skips the chunk's remaining sources.
                if budget.is_exhausted() {
                    break;
                }
                if vacc.is_empty() {
                    vacc = vec![0.0; n];
                    eacc = vec![0.0; m];
                }
                let ws = scratch.get_or_insert_with(|| {
                    // One checkout per chunk; the offsets bind is
                    // amortized over every source the chunk runs.
                    let mut ws = pool.acquire();
                    ws.bind_preds(g);
                    ws
                });
                let _task = snap_obs::task("brandes.source");
                let timer = source_us.start();
                accumulate_source(g, s, ws, &mut vacc, &mut eacc);
                source_us.stop_us(timer);
                processed.fetch_add(1, Ordering::Relaxed);
                sources_processed.incr();
                frontier_vertices.add(ws.order.len() as u64);
                let _ = budget.charge(ws.order.len() as u64 + 1);
            }
            (vacc, eacc)
        })
        .reduce(
            || (Vec::new(), Vec::new()),
            |(mut va, mut ea), (vb, eb)| {
                if va.is_empty() {
                    return (vb, eb);
                }
                if !vb.is_empty() {
                    for (x, y) in va.iter_mut().zip(vb) {
                        *x += y;
                    }
                    for (x, y) in ea.iter_mut().zip(eb) {
                        *x += y;
                    }
                }
                (va, ea)
            },
        );
    // Workers have no snap-obs context of their own; their workspace
    // counters rode back on the pool and are emitted here, inside the
    // kernel span, by the thread that owns it.
    pool.flush_obs();
    let vertex = if vertex.is_empty() {
        vec![0.0; n]
    } else {
        vertex
    };
    let edge = if edge.is_empty() { vec![0.0; m] } else { edge };
    (vertex, edge, processed.load(Ordering::Relaxed) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_graph::builder::from_edges;

    const EPS: f64 = 1e-9;

    #[test]
    fn path_graph_vertex_bc() {
        // Path 0-1-2-3-4: BC(center 2) = pairs {0,1}x{3,4} + ... = 4;
        // BC(1) = pairs {0}x{2,3,4} = 3; endpoints 0.
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bc = brandes(&g);
        assert!((bc.vertex[0] - 0.0).abs() < EPS);
        assert!((bc.vertex[1] - 3.0).abs() < EPS);
        assert!((bc.vertex[2] - 4.0).abs() < EPS);
        assert!((bc.vertex[3] - 3.0).abs() < EPS);
    }

    #[test]
    fn path_graph_edge_bc() {
        // Edge (i, i+1) lies on (i+1) * (n-1-i) shortest paths.
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bc = brandes(&g);
        assert!((bc.edge[0] - 4.0).abs() < EPS); // 1*4
        assert!((bc.edge[1] - 6.0).abs() < EPS); // 2*3
        assert!((bc.edge[2] - 6.0).abs() < EPS);
        assert!((bc.edge[3] - 4.0).abs() < EPS);
    }

    #[test]
    fn star_center_has_all_betweenness() {
        // Star K_{1,4}: center on all C(4,2) = 6 pairs.
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let bc = brandes(&g);
        assert!((bc.vertex[0] - 6.0).abs() < EPS);
        for v in 1..5 {
            assert!(bc.vertex[v].abs() < EPS);
        }
        // Each spoke: 1 (own endpoint pair) + 3 paths through = 4... the
        // edge (0, i) carries paths from i to the 3 others plus (i, 0):
        // σ-share = 3 + 1 = 4.
        for e in 0..4 {
            assert!((bc.edge[e] - 4.0).abs() < EPS, "edge {e}: {}", bc.edge[e]);
        }
    }

    #[test]
    fn cycle_splits_shortest_paths() {
        // C4: opposite vertices have two shortest paths; BC(v) = 0.5 for
        // each vertex (each vertex carries half of one opposite pair).
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bc = brandes(&g);
        for v in 0..4 {
            assert!((bc.vertex[v] - 0.5).abs() < EPS, "v{v}: {}", bc.vertex[v]);
        }
    }

    #[test]
    fn barbell_bridge_dominates() {
        let g = from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let bc = brandes(&g);
        let (e, _) = bc.max_edge().unwrap();
        assert_eq!(g.edge_endpoints(e), (2, 3));
        let (v, _) = bc.max_vertex().unwrap();
        assert!(v == 2 || v == 3);
    }

    #[test]
    fn par_matches_seq() {
        let g = from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        let a = brandes(&g);
        let b = par_brandes(&g);
        for v in 0..8 {
            assert!((a.vertex[v] - b.vertex[v]).abs() < 1e-7);
        }
        for e in g.edge_ids() {
            assert!((a.edge[e as usize] - b.edge[e as usize]).abs() < 1e-7);
        }
    }

    #[test]
    fn full_source_sample_equals_exact() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let sources: Vec<VertexId> = (0..5).collect();
        let a = brandes(&g);
        let b = betweenness_from_sources(&g, &sources);
        for e in g.edge_ids() {
            assert!((a.edge[e as usize] - b.edge[e as usize]).abs() < 1e-7);
        }
    }

    #[test]
    fn disconnected_graph_is_fine() {
        let g = from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let bc = brandes(&g);
        assert!((bc.vertex[1] - 1.0).abs() < EPS);
        assert!(bc.vertex[3].abs() < EPS);
    }

    #[test]
    fn vertex_bc_sum_identity_on_tree() {
        // On a tree, Σ_v BC(v) = Σ_pairs (path length - 1).
        let g = from_edges(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        let bc = brandes(&g);
        let mut expected = 0.0;
        for s in 0..6u32 {
            let d = snap_kernels::bfs(&g, s);
            for t in 0..6usize {
                if (t as u32) > s {
                    expected += (d.dist[t] - 1) as f64;
                }
            }
        }
        let total: f64 = bc.vertex.iter().sum();
        assert!((total - expected).abs() < EPS);
    }
}
