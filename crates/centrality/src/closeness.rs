//! Closeness centrality: `CC(v) = 1 / Σ_u d(v, u)`.
//!
//! Exact computation is one BFS per vertex, parallelized over sources.
//! For large graphs a sampled estimator averages distances from a random
//! subset of sources (the standard Eppstein–Wang style approximation the
//! paper's exploratory workflow calls for).
//!
//! All per-source traversals run on pooled epoch-stamped
//! [`TraversalWorkspace`]s: each worker checks one workspace out for its
//! whole chunk of sources, so an n-source exact pass performs O(workers)
//! allocations instead of O(n), and the per-source distance sums walk the
//! *touched* vertex set (`ws.order`) instead of scanning all n slots.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use snap_graph::{Graph, PooledWorkspace, TraversalWorkspace, VertexId, WorkspacePool};
use snap_kernels::bfs::bfs_levels_into;

/// Exact closeness for every vertex, parallel over sources.
///
/// Disconnected graphs use the standard convention: distances are summed
/// over the reachable set only, scaled by `(r - 1) / (n - 1)` where `r` is
/// the number of reached vertices (Wasserman–Faust correction), so that
/// vertices in small components do not get inflated scores. Isolated
/// vertices score 0.
pub fn closeness<G: Graph>(g: &G) -> Vec<f64> {
    closeness_with_workspace(g, &WorkspacePool::new())
}

/// [`closeness`] drawing traversal scratch from `pool`. Sessions that
/// interleave centrality queries hold one pool so the slot arrays warm
/// up once.
pub fn closeness_with_workspace<G: Graph>(g: &G, pool: &WorkspacePool) -> Vec<f64> {
    let n = g.num_vertices();
    if n <= 1 {
        return vec![0.0; n];
    }
    let _span = snap_obs::span("centrality.closeness");
    let sources_processed = snap_obs::counter("sources_processed");
    let source_us = snap_obs::hist("source_us");
    // One sequential BFS per worker: with n sources there is plenty of
    // outer parallelism, so the cheapest traversal per source wins. Each
    // worker folds into (workspace, scores) and the scores scatter back
    // by vertex id, keeping the output independent of chunking.
    let scored: Vec<(VertexId, f64)> = (0..n as VertexId)
        .into_par_iter()
        .fold(
            || (None::<PooledWorkspace<'_>>, Vec::new()),
            |(mut ws, mut acc), v| {
                let w = ws.get_or_insert_with(|| pool.acquire());
                let _task = snap_obs::task("closeness.source");
                let timer = source_us.start();
                bfs_levels_into(g, v, w);
                acc.push((v, closeness_from_workspace(n, w)));
                source_us.stop_us(timer);
                sources_processed.incr();
                (ws, acc)
            },
        )
        .map(|(_ws, acc)| acc)
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    let mut out = vec![0.0; n];
    for (v, cc) in scored {
        out[v as usize] = cc;
    }
    pool.flush_obs();
    out
}

/// Closeness of a single vertex.
pub fn closeness_of<G: Graph>(g: &G, v: VertexId) -> f64 {
    closeness_of_with_workspace(g, v, &mut TraversalWorkspace::new())
}

/// [`closeness_of`] on a reusable workspace: a batch of single-vertex
/// queries pays no per-query allocation — the traversal state, queue,
/// and discovery order all live in `ws` (no per-call `Frontier` or
/// dense distance vector is built at all).
pub fn closeness_of_with_workspace<G: Graph>(
    g: &G,
    v: VertexId,
    ws: &mut TraversalWorkspace,
) -> f64 {
    let n = g.num_vertices();
    if n <= 1 {
        return 0.0;
    }
    bfs_levels_into(g, v, ws);
    closeness_from_workspace(n, ws)
}

/// Wasserman–Faust-corrected closeness from a finished [`bfs_levels_into`]
/// traversal. The distance sum collapses to `Σ depth · |level|` over the
/// BFS level runs — an exact integer sum identical to summing per vertex,
/// computed from `O(D log n)` dist reads instead of one gather per
/// touched vertex.
fn closeness_from_workspace(n: usize, ws: &TraversalWorkspace) -> f64 {
    let mut sum = 0u64;
    let reached = ws.order.len() as u64;
    for (d, run) in ws.depth_runs() {
        sum += d as u64 * run.len() as u64;
    }
    if reached <= 1 || sum == 0 {
        return 0.0;
    }
    let frac = (reached - 1) as f64 / (n - 1) as f64;
    frac * (reached - 1) as f64 / sum as f64
}

/// Sampled closeness: average distance from `k` random sources, inverted.
/// Unbiased for connected graphs up to sampling noise; `O(k (m + n))`.
pub fn sampled_closeness<G: Graph>(g: &G, k: usize, seed: u64) -> Vec<f64> {
    sampled_closeness_with_workspace(g, k, seed, &WorkspacePool::new())
}

/// [`sampled_closeness`] drawing traversal scratch from `pool`.
pub fn sampled_closeness_with_workspace<G: Graph>(
    g: &G,
    k: usize,
    seed: u64,
    pool: &WorkspacePool,
) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let _span = snap_obs::span("centrality.closeness");
    let sources_processed = snap_obs::counter("sources_processed");
    let source_us = snap_obs::hist("source_us");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sources: Vec<VertexId> = (0..n as VertexId).collect();
    sources.shuffle(&mut rng);
    sources.truncate(k.max(1).min(n));
    snap_obs::add("samples_drawn", sources.len() as u64);

    // Sum of distances to each vertex from the sampled sources. The
    // per-source scatter walks the touched set only; the u64 sums make
    // the result independent of accumulation order.
    let sums: Vec<u64> = sources
        .par_iter()
        .fold(
            || (None::<PooledWorkspace<'_>>, vec![0u64; n]),
            |(mut ws, mut acc), &s| {
                let w = ws.get_or_insert_with(|| pool.acquire());
                let _task = snap_obs::task("closeness.source");
                let timer = source_us.start();
                bfs_levels_into(g, s, w);
                // Per-vertex sums need a scatter, but the depth runs let
                // it stream over `order` without re-reading a dist word
                // per vertex.
                for (d, run) in w.depth_runs() {
                    for &u in &w.order[run] {
                        acc[u as usize] += d as u64;
                    }
                }
                source_us.stop_us(timer);
                sources_processed.incr();
                (ws, acc)
            },
        )
        .map(|(_ws, acc)| acc)
        .reduce(
            || vec![0u64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    pool.flush_obs();
    let k = sources.len() as f64;
    // E[sampled sum] = k/n * (full distance sum), so scale by n/k and
    // invert with the usual (n - 1) numerator.
    sums.into_iter()
        .map(|s| {
            if s == 0 {
                0.0
            } else {
                (n as f64 - 1.0) / (s as f64 * n as f64 / k)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_graph::builder::from_edges;

    #[test]
    fn star_center_is_closest() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let cc = closeness(&g);
        // Center: sum = 4 → 4/4 * ... = (n-1)/sum = 1.0.
        assert!((cc[0] - 1.0).abs() < 1e-9);
        // Leaf: sum = 1 + 3*2 = 7 → 4/7.
        assert!((cc[1] - 4.0 / 7.0).abs() < 1e-9);
        assert!(cc[0] > cc[1]);
    }

    #[test]
    fn path_endpoints_are_farthest() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cc = closeness(&g);
        assert!(cc[2] > cc[1] && cc[1] > cc[0]);
        assert!((cc[2] - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn single_query_matches_full_pass() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5)]);
        let cc = closeness(&g);
        let mut ws = TraversalWorkspace::new();
        for v in 0..6u32 {
            assert_eq!(cc[v as usize], closeness_of(&g, v), "v{v}");
            assert_eq!(
                cc[v as usize],
                closeness_of_with_workspace(&g, v, &mut ws),
                "v{v} (reused workspace)"
            );
        }
    }

    #[test]
    fn isolated_vertex_scores_zero() {
        let g = from_edges(3, &[(0, 1)]);
        let cc = closeness(&g);
        assert_eq!(cc[2], 0.0);
    }

    #[test]
    fn disconnected_small_component_downweighted() {
        // {0,1,2,3} path and {4,5} pair: the pair's vertices reach only one
        // other vertex, so the correction shrinks their score below the
        // path's interior vertices.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let cc = closeness(&g);
        assert!(cc[1] > cc[4], "cc1 {} cc4 {}", cc[1], cc[4]);
    }

    #[test]
    fn sampled_agrees_on_full_sample() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let exact = closeness(&g);
        let sampled = sampled_closeness(&g, 5, 0);
        for v in 0..5 {
            assert!(
                (exact[v] - sampled[v]).abs() < 1e-9,
                "v{v}: {} vs {}",
                exact[v],
                sampled[v]
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(0, &[]);
        assert!(closeness(&g).is_empty());
        assert!(sampled_closeness(&g, 3, 0).is_empty());
    }
}
