//! Closeness centrality: `CC(v) = 1 / Σ_u d(v, u)`.
//!
//! Exact computation is one BFS per vertex, parallelized over sources.
//! For large graphs a sampled estimator averages distances from a random
//! subset of sources (the standard Eppstein–Wang style approximation the
//! paper's exploratory workflow calls for).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use snap_graph::{Graph, VertexId};
use snap_kernels::bfs::{bfs, par_bfs_hybrid, UNREACHABLE};

/// Exact closeness for every vertex, parallel over sources.
///
/// Disconnected graphs use the standard convention: distances are summed
/// over the reachable set only, scaled by `(r - 1) / (n - 1)` where `r` is
/// the number of reached vertices (Wasserman–Faust correction), so that
/// vertices in small components do not get inflated scores. Isolated
/// vertices score 0.
pub fn closeness<G: Graph>(g: &G) -> Vec<f64> {
    let n = g.num_vertices();
    if n <= 1 {
        return vec![0.0; n];
    }
    // One sequential BFS per worker: with n sources there is plenty of
    // outer parallelism, so the cheapest traversal per source wins.
    (0..n as VertexId)
        .into_par_iter()
        .map(|v| closeness_from_distances(n, &bfs(g, v).dist))
        .collect()
}

/// Closeness of a single vertex.
///
/// A lone query has no source-level parallelism to exploit, so the
/// traversal itself runs on the parallel direction-optimizing BFS.
pub fn closeness_of<G: Graph>(g: &G, v: VertexId) -> f64 {
    let n = g.num_vertices();
    if n <= 1 {
        return 0.0;
    }
    closeness_from_distances(n, &par_bfs_hybrid(g, v).dist)
}

fn closeness_from_distances(n: usize, dist: &[u32]) -> f64 {
    let mut sum = 0u64;
    let mut reached = 0u64;
    for &d in dist {
        if d != UNREACHABLE {
            sum += d as u64;
            reached += 1;
        }
    }
    if reached <= 1 || sum == 0 {
        return 0.0;
    }
    let frac = (reached - 1) as f64 / (n - 1) as f64;
    frac * (reached - 1) as f64 / sum as f64
}

/// Sampled closeness: average distance from `k` random sources, inverted.
/// Unbiased for connected graphs up to sampling noise; `O(k (m + n))`.
pub fn sampled_closeness<G: Graph>(g: &G, k: usize, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sources: Vec<VertexId> = (0..n as VertexId).collect();
    sources.shuffle(&mut rng);
    sources.truncate(k.max(1).min(n));

    // Sum of distances to each vertex from the sampled sources.
    let sums: Vec<u64> = sources
        .par_iter()
        .fold(
            || vec![0u64; n],
            |mut acc, &s| {
                let r = bfs(g, s);
                for (v, &d) in r.dist.iter().enumerate() {
                    if d != UNREACHABLE {
                        acc[v] += d as u64;
                    }
                }
                acc
            },
        )
        .reduce(
            || vec![0u64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    let k = sources.len() as f64;
    // E[sampled sum] = k/n * (full distance sum), so scale by n/k and
    // invert with the usual (n - 1) numerator.
    sums.into_iter()
        .map(|s| {
            if s == 0 {
                0.0
            } else {
                (n as f64 - 1.0) / (s as f64 * n as f64 / k)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_graph::builder::from_edges;

    #[test]
    fn star_center_is_closest() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let cc = closeness(&g);
        // Center: sum = 4 → 4/4 * ... = (n-1)/sum = 1.0.
        assert!((cc[0] - 1.0).abs() < 1e-9);
        // Leaf: sum = 1 + 3*2 = 7 → 4/7.
        assert!((cc[1] - 4.0 / 7.0).abs() < 1e-9);
        assert!(cc[0] > cc[1]);
    }

    #[test]
    fn path_endpoints_are_farthest() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cc = closeness(&g);
        assert!(cc[2] > cc[1] && cc[1] > cc[0]);
        assert!((cc[2] - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_vertex_scores_zero() {
        let g = from_edges(3, &[(0, 1)]);
        let cc = closeness(&g);
        assert_eq!(cc[2], 0.0);
    }

    #[test]
    fn disconnected_small_component_downweighted() {
        // {0,1,2,3} path and {4,5} pair: the pair's vertices reach only one
        // other vertex, so the correction shrinks their score below the
        // path's interior vertices.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let cc = closeness(&g);
        assert!(cc[1] > cc[4], "cc1 {} cc4 {}", cc[1], cc[4]);
    }

    #[test]
    fn sampled_agrees_on_full_sample() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let exact = closeness(&g);
        let sampled = sampled_closeness(&g, 5, 0);
        for v in 0..5 {
            assert!(
                (exact[v] - sampled[v]).abs() < 1e-9,
                "v{v}: {} vs {}",
                exact[v],
                sampled[v]
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(0, &[]);
        assert!(closeness(&g).is_empty());
        assert!(sampled_closeness(&g, 3, 0).is_empty());
    }
}
