#!/usr/bin/env python3
"""Compare a perf_suite run against a committed baseline.

Usage: check_bench.py BASELINE.json CURRENT.json [TOLERANCE]

Fails (exit 1) when:
  * either file is not a JSON array of rows with exactly the keys
    {bench, n, m, wall_ms, work_units, peak_bytes} (schema drift);
  * the two files do not cover the same set of benches;
  * any bench's wall_ms exceeds TOLERANCE x the baseline (default 3.0 --
    loose on purpose: shared CI runners are noisy, and this job exists to
    catch order-of-magnitude regressions and schema drift, not percents);
  * work_units changed for a bench with matching n/m (the kernel did a
    different amount of work on the same input -- a silent semantic
    change, not noise);
  * peak_bytes exceeds 2x the baseline when both sides recorded it
    (nonzero -- a build without the mem-track feature records 0, which
    disables the gate for that bench). Memory footprint is much less
    runner-sensitive than wall time, so the tolerance is tighter, but 2x
    still leaves room for thread-count differences.
"""

import json
import sys

SCHEMA = {"bench", "n", "m", "wall_ms", "work_units", "peak_bytes"}


def load(path):
    with open(path) as f:
        rows = json.load(f)
    if not isinstance(rows, list) or not rows:
        sys.exit(f"{path}: expected a non-empty JSON array")
    out = {}
    for row in rows:
        keys = set(row)
        if keys != SCHEMA:
            sys.exit(f"{path}: schema drift: got {sorted(keys)}, want {sorted(SCHEMA)}")
        out[row["bench"]] = row
    return out


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    base = load(sys.argv[1])
    cur = load(sys.argv[2])
    tol = float(sys.argv[3]) if len(sys.argv) == 4 else 3.0

    if set(base) != set(cur):
        sys.exit(
            f"bench sets differ: baseline {sorted(base)} vs current {sorted(cur)}"
        )

    failures = []
    for name, b in sorted(base.items()):
        c = cur[name]
        limit = tol * b["wall_ms"]
        status = "ok"
        if c["wall_ms"] > limit:
            status = f"FAIL (> {tol}x baseline)"
            failures.append(name)
        if (c["n"], c["m"]) == (b["n"], b["m"]) and c["work_units"] != b["work_units"]:
            status = (
                f"FAIL (work_units {b['work_units']} -> {c['work_units']} "
                "on identical input)"
            )
            failures.append(name)
        if b["peak_bytes"] and c["peak_bytes"] and c["peak_bytes"] > 2.0 * b["peak_bytes"]:
            status = (
                f"FAIL (peak_bytes {b['peak_bytes']} -> {c['peak_bytes']}, "
                "> 2x baseline)"
            )
            failures.append(name)
        print(
            f"{name:30s} baseline {b['wall_ms']:9.3f} ms   "
            f"current {c['wall_ms']:9.3f} ms   {status}"
        )

    if failures:
        sys.exit(f"bench regression check failed: {sorted(set(failures))}")
    print(f"all {len(base)} benches within {tol}x of baseline")


if __name__ == "__main__":
    main()
