#!/usr/bin/env python3
"""Validate a Chrome trace-event file emitted by `snap-cli --trace-out`.

Usage: check_trace.py TRACE.json [--expect-tids N] [--min-events N]

Fails (exit 1) when:
  * the file is not a JSON object with a `traceEvents` array;
  * any event is missing name/ph/ts/pid/tid or has a ph other than B/E/C
    (C counter events -- the memory track -- must carry a numeric args
    value and are excluded from the nesting checks);
  * any thread's events are not sorted by timestamp;
  * any thread's B/E events do not nest (an E must close the most recent
    open B of the same name, and nothing may stay open at the end) --
    Perfetto renders unbalanced streams misleadingly, so the exporter
    guarantees well-formedness and this script holds it to that;
  * fewer distinct tids than --expect-tids appear (the parallel kernels
    really produced worker-thread events);
  * fewer events than --min-events appear (default 2: at least one B/E
    pair, catching silently empty traces).
"""

import json
import sys


def main():
    args = sys.argv[1:]
    expect_tids = 1
    min_events = 2
    path = None
    i = 0
    while i < len(args):
        if args[i] == "--expect-tids":
            expect_tids = int(args[i + 1])
            i += 2
        elif args[i] == "--min-events":
            min_events = int(args[i + 1])
            i += 2
        elif path is None:
            path = args[i]
            i += 1
        else:
            sys.exit(__doc__)
    if path is None:
        sys.exit(__doc__)

    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        sys.exit(f"{path}: expected an object with a traceEvents array")
    events = doc["traceEvents"]

    by_tid = {}
    for i, ev in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                sys.exit(f"{path}: event {i} missing {key}: {ev}")
        if ev["ph"] == "C":
            # Counter samples (the live-bytes memory track) carry a value
            # instead of nesting; validate the payload and move on.
            args_obj = ev.get("args")
            if not isinstance(args_obj, dict) or not all(
                isinstance(v, (int, float)) for v in args_obj.values()
            ):
                sys.exit(f"{path}: event {i}: C event needs numeric args: {ev}")
            continue
        if ev["ph"] not in ("B", "E"):
            sys.exit(f"{path}: event {i} has ph {ev['ph']!r}, want B, E, or C")
        by_tid.setdefault(ev["tid"], []).append(ev)

    for tid, evs in sorted(by_tid.items()):
        last_ts = -1
        stack = []
        for ev in evs:
            if ev["ts"] < last_ts:
                sys.exit(f"{path}: tid {tid}: timestamps not sorted at {ev}")
            last_ts = ev["ts"]
            if ev["ph"] == "B":
                stack.append(ev["name"])
            else:
                if not stack:
                    sys.exit(f"{path}: tid {tid}: E without open B: {ev}")
                if stack[-1] != ev["name"]:
                    sys.exit(
                        f"{path}: tid {tid}: E {ev['name']!r} closes "
                        f"open B {stack[-1]!r}"
                    )
                stack.pop()
        if stack:
            sys.exit(f"{path}: tid {tid}: {len(stack)} span(s) left open: {stack}")

    if len(events) < min_events:
        sys.exit(f"{path}: only {len(events)} events, want >= {min_events}")
    if len(by_tid) < expect_tids:
        sys.exit(
            f"{path}: events from {len(by_tid)} thread(s) "
            f"({sorted(by_tid)}), want >= {expect_tids}"
        )
    print(
        f"{path}: {len(events)} events across {len(by_tid)} thread(s), "
        "all nested and sorted"
    )


if __name__ == "__main__":
    main()
