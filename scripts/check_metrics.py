#!/usr/bin/env python3
"""Validate telemetry files written by `snap-cli --metrics-out`.

Usage: check_metrics.py METRICS.ndjson [METRICS.om] [--min-samples N]
       [--expect NAME]...

The OpenMetrics path defaults to the NDJSON path + ".om" (mirroring the
sampler's own default). Fails (exit 1) when:

NDJSON:
  * any line is not a JSON object;
  * `seq` is not 0,1,2,... (a skipped or duplicated sample);
  * `ts_ms` is not monotonically non-decreasing;
  * any sample is missing bytes_live / peak_bytes / allocs / allocated /
    freed, or allocated/freed/allocs regress (they are cumulative);
  * fewer than --min-samples lines (default 1; the sampler writes its
    first sample immediately, so even a short run leaves one).

OpenMetrics:
  * the exposition does not end with `# EOF`;
  * a sample line's metric name strays outside [a-zA-Z0-9_:] or its
    value does not parse as a float;
  * a metric appears without a preceding `# TYPE` line;
  * `snap_mem_peak_bytes` is absent (the one metric every build --
    mem-track or not -- must expose);
  * any metric named with a repeatable `--expect NAME` is absent
    (counters match with or without the OpenMetrics `_total` suffix) --
    how CI pins the `snap_serve_*` series from a `serve` run.
"""

import json
import sys

NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)
REQUIRED_KEYS = ("bytes_live", "peak_bytes", "allocs", "allocated", "freed")
CUMULATIVE = ("allocs", "allocated", "freed")


def check_ndjson(path, min_samples):
    with open(path) as f:
        lines = [ln for ln in f.read().splitlines() if ln]
    if len(lines) < min_samples:
        sys.exit(f"{path}: only {len(lines)} sample(s), want >= {min_samples}")
    prev_ts = -1
    prev_cum = {k: -1 for k in CUMULATIVE}
    for i, line in enumerate(lines):
        try:
            sample = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{i + 1}: not JSON ({e}): {line[:120]}")
        if not isinstance(sample, dict):
            sys.exit(f"{path}:{i + 1}: not an object")
        if sample.get("seq") != i:
            sys.exit(f"{path}:{i + 1}: seq {sample.get('seq')!r}, want {i}")
        ts = sample.get("ts_ms")
        if not isinstance(ts, (int, float)) or ts < prev_ts:
            sys.exit(f"{path}:{i + 1}: ts_ms {ts!r} not monotonic (prev {prev_ts})")
        prev_ts = ts
        for key in REQUIRED_KEYS:
            if not isinstance(sample.get(key), (int, float)):
                sys.exit(f"{path}:{i + 1}: missing numeric {key}")
        for key in CUMULATIVE:
            if sample[key] < prev_cum[key]:
                sys.exit(
                    f"{path}:{i + 1}: cumulative {key} regressed "
                    f"{prev_cum[key]} -> {sample[key]}"
                )
            prev_cum[key] = sample[key]
    return len(lines)


def check_openmetrics(path, expect=()):
    with open(path) as f:
        text = f.read()
    if not text.endswith("# EOF\n"):
        sys.exit(f"{path}: exposition must end with '# EOF'")
    typed = set()
    names = set()
    for i, line in enumerate(text.splitlines()):
        if line.startswith("# TYPE "):
            typed.add(line.split()[2])
            continue
        if line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            sys.exit(f"{path}:{i + 1}: want 'name value', got: {line!r}")
        name, value = parts
        if not set(name) <= NAME_CHARS:
            sys.exit(f"{path}:{i + 1}: bad metric name {name!r}")
        try:
            float(value)
        except ValueError:
            sys.exit(f"{path}:{i + 1}: non-numeric value {value!r}")
        # Counters expose `name_total` under a `# TYPE name counter` line.
        base = name[: -len("_total")] if name.endswith("_total") else name
        if base not in typed and name not in typed:
            sys.exit(f"{path}:{i + 1}: {name} has no preceding # TYPE line")
        names.add(name)
    if "snap_mem_peak_bytes" not in names:
        sys.exit(f"{path}: snap_mem_peak_bytes missing from exposition")
    for name in expect:
        if name not in names and name + "_total" not in names:
            sys.exit(f"{path}: expected metric {name} missing from exposition")
    return len(names)


def main():
    args = sys.argv[1:]
    min_samples = 1
    expect = []
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--min-samples":
            min_samples = int(args[i + 1])
            i += 2
        elif args[i] == "--expect":
            expect.append(args[i + 1])
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if len(paths) not in (1, 2):
        sys.exit(__doc__)
    ndjson = paths[0]
    om = paths[1] if len(paths) == 2 else ndjson + ".om"

    samples = check_ndjson(ndjson, min_samples)
    metrics = check_openmetrics(om, expect)
    print(f"{ndjson}: {samples} well-formed sample(s); {om}: {metrics} metric(s)")


if __name__ == "__main__":
    main()
