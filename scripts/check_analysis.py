#!/usr/bin/env python3
"""Validate the JSON output of `snap-cli obs efficiency` / `obs critical-path`.

Usage: check_analysis.py EFFICIENCY.json CRITICAL.json [--min-threads N]

Holds the analyzer to its own math (exit 1 on any failure):
  * efficiency is a percentage in [0, 100] and the busy-time identity
    holds: sum(per_thread busy) == threads * wall * efficiency within
    5% relative error (the paper-acceptance bound; exact up to the
    analyzer's 2-decimal rounding);
  * per-thread busy times are each <= wall, and their max/mean matches
    the reported imbalance skew (>= 1 by construction);
  * the serial fraction is a percentage and the Amdahl ceiling derived
    from it matches the reported speedup ceiling;
  * the critical path is a root-to-leaf chain: depths increase by one,
    every step's self_us <= total_us, the steps' self_us sum to
    critical_path_us exactly, and the path cannot exceed the wall;
  * with --min-threads, at least that many threads contributed busy
    time (proof worker threads really emitted events).
"""

import json
import sys


def expect(cond, msg):
    if not cond:
        sys.exit(f"check_analysis: FAIL: {msg}")


def main():
    args = sys.argv[1:]
    min_threads = 1
    if "--min-threads" in args:
        i = args.index("--min-threads")
        min_threads = int(args[i + 1])
        del args[i:i + 2]
    if len(args) != 2:
        sys.exit(__doc__)
    eff_path, crit_path = args

    with open(eff_path) as f:
        eff = json.load(f)
    with open(crit_path) as f:
        crit = json.load(f)

    # --- efficiency ---------------------------------------------------
    for key in ("wall_us", "threads", "total_busy_us", "parallel_efficiency_pct",
                "imbalance_skew", "serial_us", "serial_fraction_pct",
                "speedup_ceiling", "per_thread"):
        expect(key in eff, f"{eff_path}: missing {key}")
    wall, threads = eff["wall_us"], eff["threads"]
    pct = eff["parallel_efficiency_pct"]
    expect(wall > 0, f"wall_us must be positive: {wall}")
    expect(threads >= min_threads,
           f"{threads} thread(s) contributed, want >= {min_threads}")
    expect(0.0 <= pct <= 100.0, f"efficiency out of range: {pct}")

    busy_sum = sum(t["busy_us"] for t in eff["per_thread"])
    expect(busy_sum == eff["total_busy_us"],
           f"per_thread busy sums to {busy_sum}, header says {eff['total_busy_us']}")
    ideal = threads * wall * pct / 100.0
    if ideal > 0:
        rel = abs(busy_sum - ideal) / ideal
        expect(rel <= 0.05,
               f"busy identity violated: sum {busy_sum} vs "
               f"{threads} x {wall} x {pct}% = {ideal:.0f} ({rel:.1%} off)")
    else:
        expect(busy_sum == 0, f"zero efficiency but busy time {busy_sum}")

    busies = [t["busy_us"] for t in eff["per_thread"]]
    expect(len(busies) == threads,
           f"per_thread has {len(busies)} rows, header says {threads}")
    for t in eff["per_thread"]:
        expect(t["busy_us"] <= wall,
               f"tid {t['tid']} busier than the wall: {t['busy_us']} > {wall}")
    if busies and max(busies) > 0:
        skew = max(busies) / (sum(busies) / len(busies))
        expect(abs(skew - eff["imbalance_skew"]) <= 0.011,
               f"skew {eff['imbalance_skew']} != max/mean {skew:.3f}")
    expect(eff["imbalance_skew"] >= 1.0 or eff["imbalance_skew"] == 0.0,
           f"skew below 1: {eff['imbalance_skew']}")

    sf = eff["serial_fraction_pct"]
    expect(0.0 <= sf <= 100.0, f"serial fraction out of range: {sf}")
    expect(eff["serial_us"] <= wall,
           f"serial time exceeds the wall: {eff['serial_us']} > {wall}")
    expect(abs(sf - 100.0 * eff["serial_us"] / wall) <= 0.011,
           f"serial fraction {sf}% disagrees with "
           f"{eff['serial_us']}/{wall}")
    # The Amdahl-style ceiling is wall/serial from the measured
    # concurrency sweep (capped at wall when nothing is serial).
    ceiling = wall / eff["serial_us"] if eff["serial_us"] > 0 else float(wall)
    expect(abs(ceiling - eff["speedup_ceiling"]) <= 0.011 * max(ceiling, 1.0),
           f"ceiling {eff['speedup_ceiling']} != wall/serial = {ceiling:.3f}")

    # --- critical path ------------------------------------------------
    for key in ("critical_path_us", "span_count", "steps"):
        expect(key in crit, f"{crit_path}: missing {key}")
    steps = crit["steps"]
    expect(steps, "critical path has no steps")
    expect(crit["span_count"] >= len(steps),
           f"path longer than the tree: {len(steps)} steps, "
           f"{crit['span_count']} spans")
    self_sum = 0
    for i, s in enumerate(steps):
        for key in ("name", "depth", "total_us", "self_us", "calls"):
            expect(key in s, f"step {i} missing {key}: {s}")
        expect(s["depth"] == i, f"step {i} at depth {s['depth']}, want {i}")
        expect(s["self_us"] <= s["total_us"],
               f"step {s['name']}: self {s['self_us']} > total {s['total_us']}")
        expect(s["calls"] >= 1, f"step {s['name']} with zero calls")
        self_sum += s["self_us"]
    expect(self_sum == crit["critical_path_us"],
           f"steps' self_us sum to {self_sum}, header says "
           f"{crit['critical_path_us']}")
    # Path self-times exclude off-path siblings, so they can only bound
    # the root's inclusive time from below.
    expect(steps[0]["total_us"] >= crit["critical_path_us"],
           f"path {crit['critical_path_us']}us exceeds the root span "
           f"{steps[0]['total_us']}us")
    # The chain nests: each step's total fits inside its parent's.
    for parent, child in zip(steps, steps[1:]):
        expect(child["total_us"] <= parent["total_us"],
               f"{child['name']} ({child['total_us']}us) outgrows its parent "
               f"{parent['name']} ({parent['total_us']}us)")

    print(f"check_analysis: ok (efficiency {pct}% over {threads} thread(s), "
          f"critical path {crit['critical_path_us']}us in {len(steps)} steps)")


if __name__ == "__main__":
    main()
