#!/usr/bin/env python3
"""End-to-end driver for `snap-cli serve`: spawn the server on a graph,
run a mixed workload over stdin, and validate the wire protocol.

Usage: serve_smoke.py SNAP_CLI GRAPH [--metrics-out PATH] [--slow-log]

Checks (exit 1 on any failure):
  * every request gets exactly one JSON response with the echoed id;
  * responses carry kind / epoch / cache / degraded / wall_us / payload;
  * a repeated query is a cache hit with byte-identical payload;
  * a cold query with deadline_ms 0 is answered degraded, not errored,
    and the next clean query is unaffected;
  * malformed lines get an error response that still echoes the id;
  * a final `stats` query agrees with the per-response cache outcomes;
  * the server exits 0 on EOF;
  * with --metrics-out, the OpenMetrics exposition carries the
    snap_serve_* series and its request counter matches the workload;
  * with --slow-log, the server runs under `--slow-ms 0 --trace-sample 1`
    and the driver additionally asserts that every response carries a
    unique nonzero trace_id, that `stats` returns a non-empty
    slow_queries array whose entries split queue_us from compute_us and
    embed a sampled span tree, and that a `dump` meta query returns the
    flight recorder's non-empty ring.
"""

import json
import subprocess
import sys


def expect(cond, msg):
    if not cond:
        sys.exit(f"serve_smoke: FAIL: {msg}")


def send(proc, obj):
    proc.stdin.write(json.dumps(obj) + "\n")
    proc.stdin.flush()


def recv(proc):
    line = proc.stdout.readline()
    expect(line, "server closed stdout mid-workload")
    line = line.strip()
    if not line.startswith("{"):
        return recv(proc)  # human banner line
    try:
        return json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"serve_smoke: FAIL: unparseable response {line!r}: {e}")


def roundtrip(proc, obj):
    send(proc, obj)
    resp = recv(proc)
    expect(resp.get("id") == obj.get("id"),
           f"id {obj.get('id')} not echoed in {resp}")
    return resp


def main():
    args = [a for a in sys.argv[1:]]
    metrics = None
    if "--metrics-out" in args:
        i = args.index("--metrics-out")
        metrics = args[i + 1]
        del args[i:i + 2]
    slow_log = "--slow-log" in args
    if slow_log:
        args.remove("--slow-log")
    if len(args) != 2:
        sys.exit(__doc__)
    cli, graph = args

    # One worker so hit/miss outcomes are deterministic (no two workers
    # racing the same cold key).
    cmd = [cli, "serve", graph, "--workers", "1"]
    if metrics:
        cmd += ["--metrics-out", metrics, "--stats-every", "20"]
    if slow_log:
        # Threshold 0 puts every request in the slow log; sample rate 1
        # attaches a span tree to every exemplar.
        cmd += ["--slow-ms", "0", "--trace-sample", "1"]
    proc = subprocess.Popen(cmd, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, text=True)

    hits = misses = 0
    trace_ids = []
    # Cold wave: distinct sources, all misses.
    first = {}
    for i in range(8):
        resp = roundtrip(proc, {"id": i + 1, "query": "bfs", "source": i})
        if slow_log:
            expect(resp.get("trace_id", 0) > 0,
                   f"response missing a nonzero trace_id: {resp}")
            trace_ids.append(resp["trace_id"])
        for key in ("kind", "epoch", "cache", "degraded", "wall_us", "payload"):
            expect(key in resp, f"response missing {key}: {resp}")
        expect(resp["cache"] == "miss", f"cold query not a miss: {resp}")
        expect(resp["payload"]["source"] == i, f"wrong payload: {resp}")
        first[i] = json.dumps(resp["payload"], sort_keys=True)
        misses += 1

    # Hot wave: identical queries, all hits, byte-identical payloads.
    for i in range(8):
        resp = roundtrip(proc, {"id": 100 + i, "query": "bfs", "source": i})
        expect(resp["cache"] == "hit", f"repeat not served from cache: {resp}")
        expect(json.dumps(resp["payload"], sort_keys=True) == first[i],
               f"hit payload differs from the miss for source {i}")
        hits += 1

    # Over-deadline: answered degraded (still a well-formed answer).
    resp = roundtrip(proc, {"id": 200, "query": "summary",
                            "seed": 7, "deadline_ms": 0})
    expect(resp["degraded"] is True, f"zero deadline must degrade: {resp}")
    misses += 1
    # The degraded answer must not have been cached: re-ask clean.
    resp = roundtrip(proc, {"id": 201, "query": "summary", "seed": 7})
    expect(resp["cache"] == "miss" and resp["degraded"] is False,
           f"clean re-ask after a degraded answer went wrong: {resp}")
    misses += 1

    # Malformed lines: error responses that still echo the id.
    send(proc, {"id": 300, "query": "frobnicate"})
    resp = recv(proc)
    expect(resp.get("id") == 300 and "error" in resp,
           f"unknown query must error with the id echoed: {resp}")
    proc.stdin.write('{"id": 301, "query": \n')
    proc.stdin.flush()
    resp = recv(proc)
    expect("error" in resp, f"truncated json must error: {resp}")

    # Meta queries answer live and agree with what we observed.
    resp = roundtrip(proc, {"id": 400, "query": "epoch"})
    expect(resp["kind"] == "epoch" and "n" in resp["payload"], f"{resp}")
    resp = roundtrip(proc, {"id": 401, "query": "stats"})
    stats = resp["payload"]
    expect(stats["cache_hits"] == hits,
           f"engine counted {stats['cache_hits']} hits, driver saw {hits}")
    expect(stats["cache_misses"] == misses,
           f"engine counted {stats['cache_misses']} misses, driver saw {misses}")
    expect(stats["shed"] == 0, f"nothing should shed at this load: {stats}")
    expect(stats["degraded"] == 1, f"exactly one degraded answer: {stats}")
    total = hits + misses + 2  # + the two meta queries

    if slow_log:
        expect(len(set(trace_ids)) == len(trace_ids),
               f"trace ids must be unique: {trace_ids}")
        slow = stats.get("slow_queries")
        expect(isinstance(slow, list) and slow,
               f"--slow-ms 0 must fill the slow-query log: {stats}")
        for entry in slow:
            for key in ("trace_id", "kind", "epoch", "cache",
                        "queue_us", "compute_us", "wall_us"):
                expect(key in entry, f"slow-query entry missing {key}: {entry}")
            expect(entry["trace_id"] > 0, f"slow entry without trace id: {entry}")
            expect(entry["wall_us"] >= entry["compute_us"],
                   f"wall must cover compute: {entry}")
        traced = [e for e in slow if "trace" in e]
        expect(traced, f"trace_sample 1 must attach span trees: {slow}")
        for entry in traced:
            spans = json.dumps(entry["trace"])
            expect("serve.request" in spans,
                   f"sampled trace missing the serve.request span: {entry}")

        # The always-on flight recorder has been accumulating the whole
        # workload; dump must return its ring.
        resp = roundtrip(proc, {"id": 402, "query": "dump"})
        dump = resp["payload"]
        expect(dump.get("events", 0) > 0 and dump.get("ring"),
               f"flight recorder dump must not be empty: {dump}")
        expect(len(dump["ring"]) == dump["events"],
               f"dump event count disagrees with the ring: {dump}")
        whats = {ev.get("what") for ev in dump["ring"]}
        expect("request" in whats, f"no request events in the ring: {whats}")
        for ev in dump["ring"]:
            for key in ("ts_us", "what", "trace_id", "outcome", "wall_us"):
                expect(key in ev, f"flight event missing {key}: {ev}")
        total += 1  # the dump meta query

    proc.stdin.close()
    expect(proc.wait(timeout=60) == 0, "server must exit 0 on EOF")

    if metrics:
        text = open(metrics + ".om").read()
        expect(text.endswith("# EOF\n"), "OpenMetrics must end with # EOF")
        series = {}
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name, value = line.split()
            series[name] = float(value)
        for name in ("snap_serve_requests_total", "snap_serve_cache_hits_total",
                     "snap_serve_cache_misses_total", "snap_serve_shed_total",
                     "snap_serve_degraded_total", "snap_serve_cache_bytes",
                     "snap_serve_cache_entries", "snap_serve_epoch"):
            expect(name in series, f"{name} missing from OpenMetrics")
        expect(series["snap_serve_requests_total"] == total,
               f"exported {series['snap_serve_requests_total']} requests, "
               f"workload issued {total}")
        expect(series["snap_serve_cache_hits_total"] == hits,
               f"exported hits disagree: {series['snap_serve_cache_hits_total']}")

    print(f"serve_smoke: ok ({total} requests: {hits} hits, {misses} misses, "
          f"1 degraded, 2 errors)")


if __name__ == "__main__":
    main()
